// Cross-sweep diff tests: Newcombe interval properties, axis-value
// alignment (index-permuted stores pair up; disjoint grids report every
// cell unmatched), the self-diff-is-exactly-zero contract, and the
// text/CSV/JSON emitters' determinism.
#include "campaign/compare.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/stats.h"
#include "persist/campaign_store.h"

namespace msa::campaign {
namespace {

using persist::CampaignStore;
using persist::StoreManifest;
using persist::SweepData;
using persist::TrialRecord;

TEST(NewcombeInterval, ContainsDeltaAndStaysInRange) {
  // 8/10 vs 4/10: delta -0.4; composing the Wilson intervals pinned in
  // test_stats gives approximately [-0.6726, 0.0226] — overlapping
  // zero, so NOT significant at these trial counts.
  const DeltaInterval ci = newcombe_interval(8, 10, 4, 10);
  EXPECT_NEAR(ci.low, -0.6726, 1e-3);
  EXPECT_NEAR(ci.high, 0.0226, 1e-3);
  EXPECT_FALSE(ci.excludes_zero());
  EXPECT_LE(ci.low, -0.4);
  EXPECT_GE(ci.high, -0.4);
  EXPECT_GE(ci.low, -1.0);
  EXPECT_LE(ci.high, 1.0);
}

TEST(NewcombeInterval, AntisymmetricUnderSideSwap) {
  const DeltaInterval ab = newcombe_interval(7, 9, 2, 11);
  const DeltaInterval ba = newcombe_interval(2, 11, 7, 9);
  EXPECT_DOUBLE_EQ(ab.low, -ba.high);
  EXPECT_DOUBLE_EQ(ab.high, -ba.low);
}

TEST(NewcombeInterval, ExtremesAndDegenerateCounts) {
  // 0/n vs n/n: a full-swing difference is significant even at n = 10.
  const DeltaInterval swing = newcombe_interval(0, 10, 10, 10);
  EXPECT_GT(swing.low, 0.0);
  EXPECT_LE(swing.high, 1.0);
  EXPECT_TRUE(swing.excludes_zero());

  // Identical counts: the interval straddles zero symmetrically.
  const DeltaInterval same = newcombe_interval(3, 5, 3, 5);
  EXPECT_DOUBLE_EQ(same.low, -same.high);
  EXPECT_FALSE(same.excludes_zero());

  // A side with no trials contributes the no-information interval; the
  // result can never exclude zero.
  const DeltaInterval no_info = newcombe_interval(0, 0, 5, 5);
  EXPECT_FALSE(no_info.excludes_zero());
  EXPECT_GE(no_info.low, -1.0);
  EXPECT_LE(no_info.high, 1.0);
}

TEST(NewcombePValue, ConsistentWithIntervalFlagAtAlpha) {
  // The inverted p-value must agree with the 95% interval's verdict:
  // p < 0.05 exactly when the interval excludes zero. Spot-check count
  // pairs on both sides of the boundary.
  const struct {
    std::size_t sa, ta, sb, tb;
  } cases[] = {{0, 10, 10, 10}, {8, 10, 4, 10}, {10, 20, 20, 20},
               {3, 5, 3, 5},    {14, 20, 20, 20}, {0, 20, 20, 20}};
  for (const auto& c : cases) {
    const double p = newcombe_p_value(c.sa, c.ta, c.sb, c.tb);
    const bool excludes =
        newcombe_interval(c.sa, c.ta, c.sb, c.tb).excludes_zero();
    EXPECT_EQ(p < kSignificanceAlpha, excludes)
        << c.sa << "/" << c.ta << " vs " << c.sb << "/" << c.tb << " p=" << p;
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
  // Symmetric under side swap, like the interval.
  EXPECT_DOUBLE_EQ(newcombe_p_value(7, 9, 2, 11), newcombe_p_value(2, 11, 7, 9));
  // No-information sides can never reach significance.
  EXPECT_EQ(newcombe_p_value(0, 0, 5, 5), 1.0);
  EXPECT_EQ(newcombe_p_value(5, 5, 0, 0), 1.0);
  // Identical proportions carry no evidence at all.
  EXPECT_EQ(newcombe_p_value(3, 5, 3, 5), 1.0);
  // A full swing at decent n is significant far past alpha.
  EXPECT_LT(newcombe_p_value(0, 20, 20, 20), 1e-6);
}

TEST(BenjaminiHochberg, MatchesHandComputedAdjustment) {
  // Textbook example, m = 5: adjusted q_(i) = min over j >= i of
  // p_(j) * m / j, clamped to 1.
  const std::vector<double> p{0.001, 0.01, 0.02, 0.04, 0.5};
  const std::vector<double> q = benjamini_hochberg(p);
  ASSERT_EQ(q.size(), 5u);
  EXPECT_DOUBLE_EQ(q[0], 0.005);
  EXPECT_DOUBLE_EQ(q[1], 0.025);
  EXPECT_DOUBLE_EQ(q[2], 0.02 * 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(q[3], 0.05);
  EXPECT_DOUBLE_EQ(q[4], 0.5);
}

TEST(BenjaminiHochberg, OrderAgnosticAndConservative) {
  // Shuffled input: each position gets the same adjusted value its
  // p-value received in sorted order.
  const std::vector<double> p{0.5, 0.02, 0.001, 0.04, 0.01};
  const std::vector<double> q = benjamini_hochberg(p);
  EXPECT_DOUBLE_EQ(q[0], 0.5);
  EXPECT_DOUBLE_EQ(q[2], 0.005);
  EXPECT_DOUBLE_EQ(q[4], 0.025);
  // Adjustment never helps a p-value and never exceeds 1.
  for (std::size_t i = 0; i < p.size(); ++i) {
    EXPECT_GE(q[i], p[i]);
    EXPECT_LE(q[i], 1.0);
  }
  // Ties share one adjusted value.
  const std::vector<double> tied = benjamini_hochberg({0.03, 0.03});
  EXPECT_DOUBLE_EQ(tied[0], tied[1]);
  EXPECT_DOUBLE_EQ(tied[0], 0.03);

  EXPECT_TRUE(benjamini_hochberg({}).empty());
  EXPECT_THROW((void)benjamini_hochberg({-0.1}), std::invalid_argument);
  EXPECT_THROW((void)benjamini_hochberg({1.1}), std::invalid_argument);
  EXPECT_THROW((void)benjamini_hochberg({std::nan("")}), std::invalid_argument);
}

CellDistribution make_cell(std::uint64_t index, const std::string& defense,
                           const std::string& model, double delay,
                           double scrubber, std::size_t trials,
                           std::size_t successes, std::size_t denials,
                           double p50, double p90, double p99) {
  CellDistribution c;
  c.index = index;
  c.coords = {{"defense", AxisValue::of_string(defense)},
              {"model", AxisValue::of_string(model)},
              {"delay_s", AxisValue::of_number(delay)},
              {"scrubber_Bps", AxisValue::of_number(scrubber)}};
  c.trials = trials;
  c.successes = successes;
  c.denials = denials;
  c.p50_psnr = p50;
  c.p90_psnr = p90;
  c.p99_psnr = p99;
  c.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(successes) / static_cast<double>(trials);
  c.success_ci = wilson_interval(successes, trials);
  return c;
}

/// Label of one axis value on a coordinate list ("<missing>" when the
/// list lacks the axis).
std::string coord_label(const std::vector<AxisCoordinate>& coords,
                        std::string_view axis) {
  const AxisValue* v = find_coord(coords, axis);
  return v == nullptr ? "<missing>" : v->label();
}

AxisMarginal make_marginal(const std::string& axis, const std::string& value,
                           std::size_t trials, std::size_t successes,
                           std::size_t denials, double mean_psnr) {
  AxisMarginal m;
  m.axis = axis;
  m.value = value;
  m.trials = trials;
  m.successes = successes;
  m.denials = denials;
  m.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(successes) / static_cast<double>(trials);
  m.success_ci = wilson_interval(successes, trials);
  m.mean_psnr = mean_psnr;
  return m;
}

StatsReport two_cell_report() {
  StatsReport r;
  r.cells.push_back(
      make_cell(0, "baseline", "m", 0.0, 0.0, 5, 4, 0, 90.0, 95.0, 99.0));
  r.cells.push_back(
      make_cell(1, "zero_on_free", "m", 0.0, 0.0, 5, 1, 2, 10.0, 20.0, 30.0));
  r.trials_analyzed = 10;
  r.marginals.push_back(make_marginal("defense", "baseline", 5, 4, 0, 92.0));
  r.marginals.push_back(make_marginal("defense", "zero_on_free", 5, 1, 2, 15.0));
  r.marginals.push_back(make_marginal("model", "m", 10, 5, 2, 53.5));
  return r;
}

TEST(DiffSweeps, SelfDiffIsExactlyZero) {
  const StatsReport r = two_cell_report();
  const DiffReport diff = diff_sweeps(r, r);

  ASSERT_EQ(diff.cells.size(), 2u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  EXPECT_EQ(diff.significant_cells, 0u);
  for (const CellDelta& d : diff.cells) {
    EXPECT_EQ(d.success_delta, 0.0);  // exactly, not approximately
    EXPECT_EQ(d.denial_delta, 0.0);
    EXPECT_EQ(d.p50_shift, 0.0);
    EXPECT_EQ(d.p90_shift, 0.0);
    EXPECT_EQ(d.p99_shift, 0.0);
    EXPECT_FALSE(d.significant);
    EXPECT_LE(d.success_delta_ci.low, 0.0);
    EXPECT_GE(d.success_delta_ci.high, 0.0);
    EXPECT_EQ(d.trials_a, d.trials_b);
    EXPECT_EQ(d.index_a, d.index_b);
  }
  ASSERT_EQ(diff.marginals.size(), 3u);
  for (const AxisDelta& d : diff.marginals) {
    EXPECT_EQ(d.success_delta, 0.0);
    EXPECT_EQ(d.denial_delta, 0.0);
    EXPECT_EQ(d.mean_psnr_shift, 0.0);
    EXPECT_FALSE(d.significant);
  }
}

TEST(DiffSweeps, MatchedCellsOrderedByAxisNotIndex) {
  StatsReport a = two_cell_report();
  // Side B enumerates the same axis combinations under reversed indices
  // and with different outcomes.
  StatsReport b;
  b.cells.push_back(
      make_cell(7, "zero_on_free", "m", 0.0, 0.0, 5, 0, 5, 1.0, 2.0, 3.0));
  b.cells.push_back(
      make_cell(3, "baseline", "m", 0.0, 0.0, 5, 5, 0, 95.0, 97.0, 99.0));
  b.marginals.push_back(make_marginal("defense", "baseline", 5, 5, 0, 97.0));

  const DiffReport diff = diff_sweeps(a, b);
  ASSERT_EQ(diff.cells.size(), 2u);
  // Output ascends by axis key: "baseline" sorts before "zero_on_free".
  EXPECT_EQ(coord_label(diff.cells[0].key.coords, "defense"), "baseline");
  EXPECT_EQ(diff.cells[0].index_a, 0u);
  EXPECT_EQ(diff.cells[0].index_b, 3u);
  EXPECT_DOUBLE_EQ(diff.cells[0].success_delta, 1.0 - 0.8);
  EXPECT_EQ(coord_label(diff.cells[1].key.coords, "defense"), "zero_on_free");
  EXPECT_EQ(diff.cells[1].index_b, 7u);
  EXPECT_DOUBLE_EQ(diff.cells[1].success_delta, 0.0 - 0.2);
  EXPECT_DOUBLE_EQ(diff.cells[1].denial_delta, 1.0 - 0.4);
  EXPECT_DOUBLE_EQ(diff.cells[1].p50_shift, 1.0 - 10.0);

  // Marginal deltas exist only for (axis, value) pairs present on both
  // sides — here just defense=baseline.
  ASSERT_EQ(diff.marginals.size(), 1u);
  EXPECT_EQ(diff.marginals[0].axis, "defense");
  EXPECT_EQ(diff.marginals[0].value, "baseline");
}

TEST(DiffSweeps, DisjointGridsReportEveryCellUnmatched) {
  StatsReport a;
  a.cells.push_back(
      make_cell(0, "baseline", "m1", 0.0, 0.0, 3, 3, 0, 99.0, 99.0, 99.0));
  a.marginals.push_back(make_marginal("defense", "baseline", 3, 3, 0, 99.0));
  StatsReport b;
  b.cells.push_back(
      make_cell(0, "physical_aslr", "m2", 5.0, 64.0, 3, 0, 3, 1.0, 1.0, 1.0));
  b.marginals.push_back(make_marginal("defense", "physical_aslr", 3, 0, 3, 1.0));

  const DiffReport diff = diff_sweeps(a, b);
  EXPECT_TRUE(diff.cells.empty());
  EXPECT_TRUE(diff.marginals.empty());
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(coord_label(diff.only_in_a[0].coords, "defense"), "baseline");
  EXPECT_EQ(coord_label(diff.only_in_b[0].coords, "defense"), "physical_aslr");
}

TEST(DiffSweeps, DisjointCellsCanStillShareMarginalAxes) {
  // The paper's cross-family question: defense families disjoint, delay
  // axis shared. No cell matches, but per-delay marginals still diff.
  StatsReport a;
  a.cells.push_back(
      make_cell(0, "familyA", "m", 5.0, 0.0, 4, 4, 0, 90.0, 90.0, 90.0));
  a.marginals.push_back(make_marginal("defense", "familyA", 4, 4, 0, 90.0));
  a.marginals.push_back(make_marginal("delay_s", "5", 4, 4, 0, 90.0));
  StatsReport b;
  b.cells.push_back(
      make_cell(0, "familyB", "m", 5.0, 0.0, 4, 1, 0, 30.0, 30.0, 30.0));
  b.marginals.push_back(make_marginal("defense", "familyB", 4, 1, 0, 30.0));
  b.marginals.push_back(make_marginal("delay_s", "5", 4, 1, 0, 30.0));

  const DiffReport diff = diff_sweeps(a, b);
  EXPECT_TRUE(diff.cells.empty());
  ASSERT_EQ(diff.marginals.size(), 1u);
  EXPECT_EQ(diff.marginals[0].axis, "delay_s");
  EXPECT_DOUBLE_EQ(diff.marginals[0].success_delta, 0.25 - 1.0);
  EXPECT_DOUBLE_EQ(diff.marginals[0].mean_psnr_shift, -60.0);
}

TEST(DiffSweeps, SchemaSupersetAlignsOnSharedAxes) {
  // Side A is a legacy four-axis sweep (the v1-store shape); side B swept
  // the same four axes PLUS power_cycled at a single value. The shared
  // axes are the legacy four, so every cell still pairs.
  const StatsReport a = two_cell_report();
  StatsReport b = two_cell_report();
  for (CellDistribution& c : b.cells) {
    c.coords.push_back({"power_cycled", AxisValue::of_bool(false)});
  }

  const DiffReport diff = diff_sweeps(a, b);
  EXPECT_EQ(diff.shared_axes,
            (std::vector<std::string>{"defense", "model", "delay_s",
                                      "scrubber_Bps"}));
  ASSERT_EQ(diff.cells.size(), 2u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  for (const CellDelta& d : diff.cells) {
    EXPECT_EQ(d.success_delta, 0.0);
    // The join key carries only the shared axes.
    EXPECT_EQ(find_coord(d.key.coords, "power_cycled"), nullptr);
  }

  // Two B cells that differ ONLY on the extra axis project onto the same
  // shared key — ambiguous, so diff refuses.
  StatsReport b_dup = b;
  b_dup.cells.push_back(b_dup.cells[0]);
  b_dup.cells.back().index = 9;
  b_dup.cells.back().coords.back().value = AxisValue::of_bool(true);
  EXPECT_THROW((void)diff_sweeps(a, b_dup), std::runtime_error);
}

TEST(DiffSweeps, DisjointSchemasMatchNothing) {
  StatsReport a;
  a.cells.push_back(make_cell(0, "baseline", "m", 0.0, 0.0, 3, 3, 0, 99.0,
                              99.0, 99.0));
  StatsReport b;
  CellDistribution odd;
  odd.index = 0;
  odd.coords = {{"power_cycled", AxisValue::of_bool(true)}};
  odd.trials = 3;
  b.cells.push_back(odd);

  const DiffReport diff = diff_sweeps(a, b);
  EXPECT_TRUE(diff.shared_axes.empty());
  EXPECT_TRUE(diff.cells.empty());
  ASSERT_EQ(diff.only_in_a.size(), 1u);
  ASSERT_EQ(diff.only_in_b.size(), 1u);
  EXPECT_EQ(diff.only_in_a[0].index, 0u);
  EXPECT_EQ(diff.only_in_b[0].index, 0u);
}

TEST(DiffSweeps, NonFiniteAxisValuesAreRejected) {
  // A store written before the CLI validated --delays/--scrubbers can
  // carry NaN/inf axes; a NaN key would break the alignment map's
  // ordering, so diff refuses it with a clear error instead.
  StatsReport a = two_cell_report();
  ASSERT_EQ(a.cells[1].coords[2].axis, "delay_s");
  a.cells[1].coords[2].value = AxisValue::of_number(std::nan(""));
  EXPECT_THROW((void)diff_sweeps(a, two_cell_report()), std::runtime_error);
  EXPECT_THROW((void)diff_sweeps(two_cell_report(), a), std::runtime_error);
  a.cells[1].coords[2].value =
      AxisValue::of_number(std::numeric_limits<double>::infinity());
  EXPECT_THROW((void)diff_sweeps(a, two_cell_report()), std::runtime_error);
}

TEST(DiffSweeps, DuplicateAxisKeyIsRejected) {
  StatsReport a = two_cell_report();
  a.cells.push_back(a.cells[0]);  // same axis values at another slot
  a.cells.back().index = 99;
  EXPECT_THROW((void)diff_sweeps(a, two_cell_report()), std::runtime_error);
  EXPECT_THROW((void)diff_sweeps(two_cell_report(), a), std::runtime_error);
}

TEST(DiffSweeps, FdrFlagsAreASubsetOfRawSignificance) {
  // Four cells: one hard regression (0/5 -> 5/5), one mild shift, two
  // unchanged. The FDR-adjusted p is never smaller than the raw p, and
  // significant_fdr is by construction a subset of the raw flag.
  StatsReport a = two_cell_report();
  a.cells.push_back(
      make_cell(2, "baseline", "m", 5.0, 0.0, 5, 0, 0, 1.0, 2.0, 3.0));
  a.cells.push_back(
      make_cell(3, "zero_on_free", "m", 5.0, 0.0, 5, 2, 1, 4.0, 5.0, 6.0));
  StatsReport b = a;
  b.cells[2].successes = 5;
  b.cells[2].success_rate = 1.0;
  b.cells[2].success_ci = wilson_interval(5, 5);
  b.cells[3].successes = 3;
  b.cells[3].success_rate = 0.6;
  b.cells[3].success_ci = wilson_interval(3, 5);

  const DiffReport diff = diff_sweeps(a, b);
  ASSERT_EQ(diff.cells.size(), 4u);
  std::size_t raw = 0;
  std::size_t fdr = 0;
  for (const CellDelta& d : diff.cells) {
    EXPECT_GE(d.p_value, 0.0);
    EXPECT_LE(d.p_value, 1.0);
    EXPECT_GE(d.p_value_fdr, d.p_value);  // adjustment never helps
    // The p-value agrees with the interval verdict it inverts.
    EXPECT_EQ(d.p_value < kSignificanceAlpha, d.significant);
    if (d.significant) ++raw;
    if (d.significant_fdr) {
      ++fdr;
      EXPECT_TRUE(d.significant);  // subset, never a superset
      EXPECT_LE(d.p_value_fdr, kSignificanceAlpha);
    }
    if (d.success_delta == 0.0) {
      EXPECT_EQ(d.p_value, 1.0);
      EXPECT_EQ(d.p_value_fdr, 1.0);
    }
  }
  EXPECT_EQ(diff.significant_cells, raw);
  EXPECT_EQ(diff.significant_cells_fdr, fdr);
  // The hard swing survives the correction; only it.
  EXPECT_EQ(fdr, 1u);
}

TEST(DiffSweeps, EmittersCarryPValueAndFdrColumns) {
  StatsReport a = two_cell_report();
  StatsReport b = two_cell_report();
  b.cells[0].successes = 0;
  b.cells[0].success_rate = 0.0;
  b.cells[0].success_ci = wilson_interval(0, 5);
  const DiffReport diff = diff_sweeps(a, b);

  const std::string text = diff.to_text();
  EXPECT_NE(text.find("p_fdr"), std::string::npos);
  EXPECT_NE(text.find("sig_fdr"), std::string::npos);
  EXPECT_NE(text.find("after FDR"), std::string::npos);

  const std::string csv = diff.to_csv();
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find("p_value"), std::string::npos);
  EXPECT_NE(header.find("p_value_fdr"), std::string::npos);
  EXPECT_NE(header.find("significant_fdr"), std::string::npos);

  const std::string json = diff.to_json();
  EXPECT_NE(json.find("\"p_value\":"), std::string::npos);
  EXPECT_NE(json.find("\"p_value_fdr\":"), std::string::npos);
  EXPECT_NE(json.find("\"significant_fdr\":"), std::string::npos);
  EXPECT_NE(json.find("\"significant_cells_fdr\":"), std::string::npos);
}

TEST(DiffSweeps, EmittersAreDeterministicAndLabelled) {
  const StatsReport a = two_cell_report();
  StatsReport b = two_cell_report();
  b.cells[0].successes = 0;
  b.cells[0].success_rate = 0.0;
  b.cells[0].success_ci = wilson_interval(0, 5);
  const DiffReport diff = diff_sweeps(a, b);

  const std::string text = diff.to_text();
  EXPECT_NE(text.find("cross-sweep diff (B minus A)"), std::string::npos);
  EXPECT_NE(text.find("unmatched cells (A only: 0)"), std::string::npos);
  EXPECT_NE(text.find("per-axis marginal deltas"), std::string::npos);
  EXPECT_EQ(text, diff.to_text());

  const std::string csv = diff.to_csv();
  // Strict rectangle: every line has the header's field count (no field
  // here carries an embedded comma).
  const std::string header = csv.substr(0, csv.find('\n'));
  const std::size_t header_commas = static_cast<std::size_t>(
      std::count(header.begin(), header.end(), ','));
  std::size_t line_start = 0;
  while (line_start < csv.size()) {
    const std::size_t line_end = csv.find('\n', line_start);
    const std::string line = csv.substr(line_start, line_end - line_start);
    EXPECT_EQ(static_cast<std::size_t>(
                  std::count(line.begin(), line.end(), ',')),
              header_commas)
        << line;
    line_start = line_end + 1;
  }
  EXPECT_EQ(csv, diff.to_csv());

  const std::string json = diff.to_json();
  EXPECT_NE(json.find("\"matched_cells\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cells\":["), std::string::npos);
  EXPECT_NE(json.find("\"only_in_a\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"marginals\":["), std::string::npos);
  EXPECT_EQ(json, diff.to_json());
}

TEST(DiffSweeps, IndexPermutedStoreCopyDiffsToAllZero) {
  // The acceptance contract at store level: write a sweep, copy its
  // records into a second store under permuted cell indices, and the
  // diff must align every cell by axis values with every delta exactly
  // zero — index order never enters the pairing.
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  GridBuilder grid{cfg};
  grid.defenses({"baseline", "zero_on_free"}).attack_delays_s({0.0, 5.0});

  CampaignOptions options;
  options.threads = 2;
  options.trials_per_cell = 2;

  StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;
  manifest.axes = grid.axis_schema();

  const auto dir = std::filesystem::temp_directory_path() / "msa_compare_tests";
  std::filesystem::create_directories(dir);
  const std::string path_a = (dir / "orig.store").string();
  const std::string path_b = (dir / "permuted.store").string();
  std::filesystem::remove(path_a);
  std::filesystem::remove(path_b);
  {
    CampaignRunner runner{options};
    CampaignStore store{path_a, manifest, CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }

  const SweepData data_a = persist::load_sweep({path_a});
  ASSERT_EQ(data_a.cells.size(), 4u);
  const std::uint64_t top = manifest.grid_cells - 1;
  {
    CampaignStore store{path_b, manifest, CampaignStore::Mode::kCreate};
    // Reverse the index space; axis labels travel with their cells.
    for (const CellStats& cell : data_a.cells) {
      for (const TrialRecord& t : data_a.trials) {
        if (t.cell_index != cell.index) continue;
        TrialRecord moved = t;
        moved.cell_index = top - t.cell_index;
        store.append_trial(moved);
      }
      CellStats moved = cell;
      moved.index = top - cell.index;
      store.complete_cell(moved);
    }
  }

  const StatsReport a = analyze_sweep(data_a);
  const StatsReport b = analyze_sweep(persist::load_sweep({path_b}));
  const DiffReport diff = diff_sweeps(a, b);

  ASSERT_EQ(diff.cells.size(), 4u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  EXPECT_EQ(diff.significant_cells, 0u);
  bool some_index_moved = false;
  for (const CellDelta& d : diff.cells) {
    EXPECT_EQ(d.success_delta, 0.0);
    EXPECT_EQ(d.denial_delta, 0.0);
    EXPECT_EQ(d.p50_shift, 0.0);
    EXPECT_EQ(d.p90_shift, 0.0);
    EXPECT_EQ(d.p99_shift, 0.0);
    EXPECT_FALSE(d.significant);
    EXPECT_EQ(d.index_b, top - d.index_a);
    if (d.index_a != d.index_b) some_index_moved = true;
  }
  EXPECT_TRUE(some_index_moved);
  for (const AxisDelta& d : diff.marginals) {
    EXPECT_EQ(d.success_delta, 0.0);
    EXPECT_EQ(d.mean_psnr_shift, 0.0);
  }
}

}  // namespace
}  // namespace msa::campaign
