#include "util/crc32.h"

#include <gtest/gtest.h>

#include <vector>

namespace msa::util {
namespace {

TEST(Crc32, KnownVector) {
  // The canonical CRC-32 check value.
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
}

TEST(Crc32, EmptyInput) { EXPECT_EQ(crc32(""), 0x00000000u); }

TEST(Crc32, SingleByte) {
  // crc32("a") is a standard known value.
  EXPECT_EQ(crc32("a"), 0xE8B7BE43u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 inc;
  for (const char c : data) {
    inc.update(std::string_view{&c, 1});
  }
  EXPECT_EQ(inc.value(), crc32(data));
}

TEST(Crc32, ChunkBoundaryInvariance) {
  std::vector<std::uint8_t> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31);
  }
  const std::uint32_t whole = crc32(data);
  for (const std::size_t split : {1UL, 7UL, 500UL, 999UL}) {
    Crc32 c;
    c.update(std::span{data.data(), split});
    c.update(std::span{data.data() + split, data.size() - split});
    EXPECT_EQ(c.value(), whole) << "split at " << split;
  }
}

TEST(Crc32, ResetRestoresInitialState) {
  Crc32 c;
  c.update("garbage");
  c.reset();
  c.update("123456789");
  EXPECT_EQ(c.value(), 0xCBF43926u);
}

TEST(Crc32, SensitiveToSingleBitFlip) {
  std::vector<std::uint8_t> data(64, 0xAB);
  const std::uint32_t before = crc32(data);
  data[30] ^= 0x01;
  EXPECT_NE(crc32(data), before);
}

TEST(Crc32, DifferentOrderDifferentCrc) {
  EXPECT_NE(crc32("ab"), crc32("ba"));
}

}  // namespace
}  // namespace msa::util
