#include "dbg/debugger.h"

#include <gtest/gtest.h>

namespace msa::dbg {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  os::Pid victim_pid = 0;
  mem::VirtAddr heap = 0;

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    victim_pid = sys.spawn(1000, {"./resnet50_pt", "m.xmodel"}, "pts/1");
    heap = sys.sbrk(victim_pid, 2 * mem::kPageSize);
    sys.write_virt32(victim_pid, heap + 0x730, 0xF7F5F8FD);
  }
};

TEST(Debugger, PsVisibleCrossUser) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  EXPECT_NE(dbg.ps().find("resnet50_pt"), std::string::npos);
  EXPECT_EQ(dbg.pids().size(), 1u);
  EXPECT_EQ(dbg.stats().ps_calls, 2u);
}

TEST(Debugger, MapsCrossUserWhenUnrestricted) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  const std::string maps = dbg.maps(f.victim_pid);
  EXPECT_NE(maps.find("[heap]"), std::string::npos);
  EXPECT_EQ(dbg.stats().maps_reads, 1u);
}

TEST(Debugger, VirtToPhysMatchesGroundTruth) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  const auto pa = dbg.virt_to_phys(f.victim_pid, f.heap + 0x730);
  const auto truth =
      f.sys.process(f.victim_pid).page_table().translate(f.heap + 0x730);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(pa, truth);
}

TEST(Debugger, VirtToPhysUnmappedIsNullopt) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  EXPECT_FALSE(dbg.virt_to_phys(f.victim_pid, 0x12345000).has_value());
}

TEST(Debugger, DevmemReadsResidue) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  const auto pa = dbg.virt_to_phys(f.victim_pid, f.heap + 0x730).value();
  f.sys.terminate(f.victim_pid);
  EXPECT_EQ(dbg.devmem32(pa), 0xF7F5F8FDu);
  EXPECT_EQ(dbg.stats().devmem_reads, 1u);
}

TEST(Debugger, DevmemCommandMatchesPaperFormat) {
  // Fig. 10: "devmem 0x61c6d730" -> "0x00000000"
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  const std::string out = dbg.devmem_command(0x4000);
  EXPECT_EQ(out, "devmem 0x4000\n0x00000000\n");
}

TEST(Debugger, OwnerOnlyAclDeniesCrossUserProcess) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001, DebuggerAcl{AclMode::kOwnerOnly}};
  EXPECT_THROW((void)dbg.maps(f.victim_pid), DebuggerAccessDenied);
  EXPECT_THROW((void)dbg.pagemap_entry(f.victim_pid, f.heap),
               DebuggerAccessDenied);
  EXPECT_THROW((void)dbg.devmem32(0x1000), DebuggerAccessDenied);
  EXPECT_EQ(dbg.stats().denials, 3u);
}

TEST(Debugger, OwnerOnlyAclAllowsOwnProcessesAndRoot) {
  Fixture f;
  SystemDebugger self{f.sys, 1000, DebuggerAcl{AclMode::kOwnerOnly}};
  EXPECT_NO_THROW((void)self.maps(f.victim_pid));
  SystemDebugger root{f.sys, 0, DebuggerAcl{AclMode::kOwnerOnly}};
  EXPECT_NO_THROW((void)root.maps(f.victim_pid));
  EXPECT_NO_THROW((void)root.devmem32(0x1000));
}

TEST(Debugger, DisabledAclDeniesEverything) {
  Fixture f;
  SystemDebugger dbg{f.sys, 0, DebuggerAcl{AclMode::kDisabled}};
  EXPECT_THROW((void)dbg.ps(), DebuggerAccessDenied);
  EXPECT_THROW((void)dbg.pids(), DebuggerAccessDenied);
  EXPECT_THROW((void)dbg.maps(f.victim_pid), DebuggerAccessDenied);
  EXPECT_THROW((void)dbg.devmem32(0), DebuggerAccessDenied);
}

TEST(Debugger, ProcPolicyStillAppliesUnderneath) {
  // Even with an unrestricted debugger, a hardened /proc policy blocks the
  // read — the two layers are independent.
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.proc_access = os::ProcAccessPolicy::kOwnerOrRoot;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  const os::Pid pid = sys.spawn(1000, {"app"}, "pts/1");
  SystemDebugger dbg{sys, 1001, DebuggerAcl{AclMode::kUnrestricted}};
  EXPECT_THROW((void)dbg.maps(pid), os::PermissionError);
}

TEST(Debugger, PagemapEntryIsRawLinuxFormat) {
  Fixture f;
  SystemDebugger dbg{f.sys, 1001};
  const std::uint64_t raw = dbg.pagemap_entry(f.victim_pid, f.heap);
  const auto e = mem::PagemapEntry::decode(raw);
  EXPECT_TRUE(e.present);
  EXPECT_EQ(mem::PageFrameAllocator::frame_to_phys(e.pfn),
            dbg.virt_to_phys(f.victim_pid, f.heap).value());
}

}  // namespace
}  // namespace msa::dbg
