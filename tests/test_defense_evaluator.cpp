#include "defense/evaluator.h"

#include <gtest/gtest.h>

namespace msa::defense {
namespace {

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 40;
  cfg.image_height = 40;
  return cfg;
}

TEST(DefenseEvaluator, BaselineAlwaysSucceeds) {
  DefenseEvaluator ev{small_base()};
  const DefenseOutcome o = ev.evaluate(preset("baseline"), 3);
  EXPECT_EQ(o.trials, 3u);
  EXPECT_EQ(o.denied, 0u);
  EXPECT_EQ(o.model_identified, 3u);
  EXPECT_EQ(o.image_recovered, 3u);
  EXPECT_DOUBLE_EQ(o.id_rate(), 1.0);
  EXPECT_DOUBLE_EQ(o.recovery_rate(), 1.0);
  EXPECT_NEAR(o.mean_pixel_match, 1.0, 1e-12);
}

TEST(DefenseEvaluator, ZeroOnFreeStopsEverything) {
  DefenseEvaluator ev{small_base()};
  const DefenseOutcome o = ev.evaluate(preset("zero_on_free"), 2);
  EXPECT_EQ(o.denied, 0u);
  EXPECT_EQ(o.model_identified, 0u);
  EXPECT_EQ(o.image_recovered, 0u);
}

TEST(DefenseEvaluator, AclDefensesDenyAllTrials) {
  DefenseEvaluator ev{small_base()};
  for (const char* name : {"proc_owner_only", "dbg_owner_only", "dbg_disabled"}) {
    const DefenseOutcome o = ev.evaluate(preset(name), 2);
    EXPECT_EQ(o.denied, 2u) << name;
    EXPECT_EQ(o.model_identified, 0u) << name;
  }
}

TEST(DefenseEvaluator, VaAslrDoesNotStopAttack) {
  DefenseEvaluator ev{small_base()};
  const DefenseOutcome o = ev.evaluate(preset("heap_va_aslr"), 2);
  EXPECT_EQ(o.image_recovered, 2u);
}

TEST(DefenseEvaluator, EvaluateAllCoversEveryPreset) {
  DefenseEvaluator ev{small_base()};
  const auto outcomes = ev.evaluate_all(1);
  EXPECT_EQ(outcomes.size(), all_presets().size());
  EXPECT_EQ(outcomes.front().preset_name, "baseline");
}

TEST(DefenseEvaluator, TableFormatsAllRows) {
  DefenseEvaluator ev{small_base()};
  const auto outcomes = ev.evaluate_all(1);
  const std::string table = DefenseEvaluator::format_table(outcomes);
  for (const auto& p : all_presets()) {
    EXPECT_NE(table.find(p.name), std::string::npos) << p.name;
  }
  EXPECT_NE(table.find("pixel-match"), std::string::npos);
}

TEST(DefenseEvaluator, RatesWithZeroTrials) {
  DefenseOutcome o;
  EXPECT_DOUBLE_EQ(o.id_rate(), 0.0);
  EXPECT_DOUBLE_EQ(o.recovery_rate(), 0.0);
}

}  // namespace
}  // namespace msa::defense
