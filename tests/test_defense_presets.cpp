#include "defense/presets.h"

#include <gtest/gtest.h>

namespace msa::defense {
namespace {

TEST(Presets, BaselineIsFullyVulnerable) {
  const auto cfg = baseline_vulnerable(attack::ScenarioConfig{});
  EXPECT_EQ(cfg.system.sanitize, mem::SanitizePolicy::kNone);
  EXPECT_EQ(cfg.system.placement, mem::PlacementPolicy::kSequentialLifo);
  EXPECT_EQ(cfg.system.proc_access, os::ProcAccessPolicy::kWorldReadable);
  EXPECT_FALSE(cfg.system.heap_va_aslr);
  EXPECT_EQ(cfg.acl.mode, dbg::AclMode::kUnrestricted);
}

TEST(Presets, EachPresetChangesExactlyItsKnob) {
  const auto base = baseline_vulnerable(attack::ScenarioConfig{});
  const auto zof = preset("zero_on_free").apply(attack::ScenarioConfig{});
  EXPECT_EQ(zof.system.sanitize, mem::SanitizePolicy::kZeroOnFree);
  EXPECT_EQ(zof.system.placement, base.system.placement);

  const auto aslr = preset("physical_aslr").apply(attack::ScenarioConfig{});
  EXPECT_EQ(aslr.system.placement, mem::PlacementPolicy::kRandomized);
  EXPECT_EQ(aslr.system.sanitize, mem::SanitizePolicy::kNone);

  const auto acl = preset("dbg_owner_only").apply(attack::ScenarioConfig{});
  EXPECT_EQ(acl.acl.mode, dbg::AclMode::kOwnerOnly);
  EXPECT_EQ(acl.system.proc_access, os::ProcAccessPolicy::kWorldReadable);

  const auto va = preset("heap_va_aslr").apply(attack::ScenarioConfig{});
  EXPECT_TRUE(va.system.heap_va_aslr);
}

TEST(Presets, AllPresetsListedWithBaselineFirst) {
  const auto& presets = all_presets();
  ASSERT_GE(presets.size(), 8u);
  EXPECT_EQ(presets.front().name, "baseline");
  for (const auto& p : presets) {
    EXPECT_FALSE(p.description.empty()) << p.name;
    EXPECT_NE(p.apply, nullptr) << p.name;
  }
}

TEST(Presets, NamesAreUnique) {
  std::set<std::string> names;
  for (const auto& p : all_presets()) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
}

TEST(Presets, UnknownNameThrows) {
  EXPECT_THROW((void)preset("no_such_defense"), std::invalid_argument);
}

TEST(Presets, LookupReturnsSameAsList) {
  for (const auto& p : all_presets()) {
    EXPECT_EQ(&preset(p.name), &p);
  }
}

TEST(Presets, WorkloadParametersPreserved) {
  attack::ScenarioConfig base;
  base.model_name = "yolov3_tiny_tf";
  base.image_width = 77;
  for (const auto& p : all_presets()) {
    const auto cfg = p.apply(base);
    EXPECT_EQ(cfg.model_name, "yolov3_tiny_tf") << p.name;
    EXPECT_EQ(cfg.image_width, 77u) << p.name;
  }
}

}  // namespace
}  // namespace msa::defense
