#include "attack/descriptor_scan.h"
#include "vitis/dpu_descriptor.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <iterator>

#include "attack/address_resolver.h"
#include "util/crc32.h"
#include "vitis/runtime.h"

namespace msa {
namespace {

vitis::DpuDescriptor sample_descriptor() {
  vitis::DpuDescriptor d;
  d.input_va = 0xaaaaee775000ULL + 0x6400;
  d.input_width = 96;
  d.input_height = 96;
  d.output_va = 0xaaaaee775000ULL + 0xD000;
  d.output_len = 10;
  d.model_crc = util::crc32("resnet50_pt");
  return d;
}

TEST(DpuDescriptor, EncodeDecodeRoundTrip) {
  const vitis::DpuDescriptor d = sample_descriptor();
  const auto bytes = d.encode();
  EXPECT_EQ(bytes.size(), vitis::DpuDescriptor::kEncodedSize);
  const auto decoded = vitis::DpuDescriptor::decode_at(bytes, 0);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, d);
}

TEST(DpuDescriptor, DecodeRejectsBadMagic) {
  auto bytes = sample_descriptor().encode();
  bytes[0] = 'X';
  EXPECT_FALSE(vitis::DpuDescriptor::decode_at(bytes, 0).has_value());
}

TEST(DpuDescriptor, DecodeRejectsCorruptedPayload) {
  auto bytes = sample_descriptor().encode();
  bytes[10] ^= 0xFF;  // inside CRC coverage
  EXPECT_FALSE(vitis::DpuDescriptor::decode_at(bytes, 0).has_value());
}

TEST(DpuDescriptor, DecodeRejectsTruncation) {
  auto bytes = sample_descriptor().encode();
  bytes.resize(bytes.size() - 1);
  EXPECT_FALSE(vitis::DpuDescriptor::decode_at(bytes, 0).has_value());
  EXPECT_FALSE(vitis::DpuDescriptor::decode_at(bytes, 40).has_value());
}

TEST(DpuDescriptor, DecodeAtNonZeroOffset) {
  const auto payload = sample_descriptor().encode();
  // back_inserter rather than range-insert: GCC 12's -Warray-bounds
  // misfires on the latter at -O2 and CI builds with -Werror.
  std::vector<std::uint8_t> residue(100, 0xAB);
  std::copy(payload.begin(), payload.end(), std::back_inserter(residue));
  const auto decoded = vitis::DpuDescriptor::decode_at(residue, 100);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->input_width, 96u);
}

struct AttackFixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  img::Image input = img::make_test_image(80, 80, 5);
  attack::ScrapedDump dump;

  AttackFixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    const vitis::VictimRun run =
        runtime.launch(1000, "resnet50_pt", input, "pts/1");
    attack::AddressResolver resolver{dbg};
    const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
    sys.terminate(run.pid);
    attack::MemoryScraper scraper{dbg};
    dump = scraper.scrape(target);
  }
};

TEST(DescriptorScan, FindsTheRuntimeDescriptor) {
  AttackFixture f;
  const auto found = attack::scan_descriptors(f.dump.bytes);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].second.input_width, 80u);
  EXPECT_EQ(found[0].second.model_crc, util::crc32("resnet50_pt"));
}

TEST(DescriptorScan, ProfileFreeReconstructionIsPixelExact) {
  // The extension's headline: no profiling pass, same result.
  AttackFixture f;
  const auto image = attack::reconstruct_via_descriptor(f.dump);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(*image, f.input);
}

TEST(DescriptorScan, RecoversVictimOutputScores) {
  AttackFixture f;
  const auto scores = attack::recover_output_scores(f.dump);
  ASSERT_TRUE(scores.has_value());
  EXPECT_EQ(scores->size(), 10u);
  float sum = 0;
  for (const float s : *scores) sum += s;
  EXPECT_NEAR(sum, 1.0f, 1e-4f);  // it's the softmax the victim computed
}

TEST(DescriptorScan, NoDescriptorNoRecovery) {
  attack::ScrapedDump empty;
  empty.bytes.assign(4096, 0);
  EXPECT_TRUE(attack::scan_descriptors(empty.bytes).empty());
  EXPECT_FALSE(attack::reconstruct_via_descriptor(empty).has_value());
  EXPECT_FALSE(attack::recover_output_scores(empty).has_value());
  EXPECT_TRUE(attack::recover_frame_ring(empty).empty());
}

TEST(DescriptorScan, CorruptedDescriptorIgnored) {
  AttackFixture f;
  const auto found = attack::scan_descriptors(f.dump.bytes);
  ASSERT_FALSE(found.empty());
  // Flip a byte inside the descriptor: CRC check must reject it.
  attack::ScrapedDump damaged = f.dump;
  damaged.bytes[found[0].first + 12] ^= 0x01;
  EXPECT_TRUE(attack::scan_descriptors(damaged.bytes).empty());
  EXPECT_FALSE(attack::reconstruct_via_descriptor(damaged).has_value());
}

TEST(DescriptorScan, DescriptorPointingOutsideDumpRejected) {
  AttackFixture f;
  const auto found = attack::scan_descriptors(f.dump.bytes);
  ASSERT_FALSE(found.empty());
  // Rewrite the descriptor with an input_va below the dump's VA base.
  vitis::DpuDescriptor d = found[0].second;
  d.input_va = f.dump.va_start - 0x10000;
  const auto enc = d.encode();
  attack::ScrapedDump redirected = f.dump;
  std::copy(enc.begin(), enc.end(),
            redirected.bytes.begin() + static_cast<std::ptrdiff_t>(found[0].first));
  EXPECT_FALSE(attack::reconstruct_via_descriptor(redirected).has_value());
}

TEST(DescriptorScan, SanitizedResidueHasNoDescriptors) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  const vitis::VictimRun run =
      runtime.launch(1000, "resnet50_pt", img::make_test_image(64, 64, 1),
                     "pts/1");
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(run.pid);
  sys.terminate(run.pid);
  attack::MemoryScraper scraper{dbg};
  const attack::ScrapedDump dump = scraper.scrape(target);
  EXPECT_TRUE(attack::scan_descriptors(dump.bytes).empty());
}

}  // namespace
}  // namespace msa
