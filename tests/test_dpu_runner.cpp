#include "vitis/dpu_runner.h"

#include <gtest/gtest.h>

#include <cstring>

#include "util/strings.h"
#include "vitis/model_zoo.h"
#include "vitis/runtime.h"

namespace msa::vitis {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  os::Pid pid = 0;
  XModel model = make_zoo_model("resnet50_pt");

  Fixture() { pid = sys.spawn(1000, {"./resnet50_pt"}, "pts/1"); }
};

TEST(DpuRunner, LayoutIsDeterministicAndOrdered) {
  const XModel m = make_zoo_model("resnet50_pt");
  const HeapLayout a = DpuRunner::layout_for(m, 96, 96);
  const HeapLayout b = DpuRunner::layout_for(m, 96, 96);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.meta_off, a.strings_off);
  EXPECT_LT(a.strings_off, a.xmodel_off);
  EXPECT_LT(a.xmodel_off, a.image_off);
  EXPECT_LT(a.image_off, a.output_off);
  EXPECT_LE(a.output_off + m.num_classes() * 4, a.total_bytes);
}

TEST(DpuRunner, LayoutDependsOnImageGeometry) {
  const XModel m = make_zoo_model("resnet50_pt");
  const HeapLayout small = DpuRunner::layout_for(m, 64, 64);
  const HeapLayout big = DpuRunner::layout_for(m, 128, 128);
  EXPECT_EQ(small.image_off, big.image_off);  // same prefix
  EXPECT_LT(small.output_off, big.output_off);
}

TEST(DpuRunner, LayoutDependsOnModel) {
  const HeapLayout r =
      DpuRunner::layout_for(make_zoo_model("resnet50_pt"), 96, 96);
  const HeapLayout s =
      DpuRunner::layout_for(make_zoo_model("squeezenet_pt"), 96, 96);
  EXPECT_NE(r.image_off, s.image_off);
}

TEST(DpuRunner, StagedStringsContainArgvAndMetadata) {
  const XModel m = make_zoo_model("resnet50_pt");
  const auto bytes = DpuRunner::staged_strings(m);
  const std::string text{bytes.begin(), bytes.end()};
  EXPECT_NE(text.find("./resnet50_pt"), std::string::npos);
  EXPECT_NE(text.find("/usr/share/vitis_ai_library/models/resnet50_pt/"),
            std::string::npos);
  EXPECT_NE(text.find("torchvision/resnet50"), std::string::npos);
  EXPECT_EQ(bytes.size() % 16, 0u);
}

TEST(DpuRunner, RunStagesImageBytesExactly) {
  Fixture f;
  DpuRunner runner{f.sys};
  const img::Image input = img::make_test_image(80, 80, 9);
  const RunResult r = runner.run(f.pid, f.model, input);

  const mem::VirtAddr heap = f.sys.process(f.pid).heap_base();
  std::vector<std::uint8_t> staged(input.pixel_count() * 3);
  f.sys.read_virt(f.pid, heap + r.layout.image_off, staged);
  EXPECT_EQ(staged, input.to_rgb_bytes());
}

TEST(DpuRunner, RunStagesSerializedModel) {
  Fixture f;
  DpuRunner runner{f.sys};
  const img::Image input = img::make_test_image(64, 64, 2);
  const RunResult r = runner.run(f.pid, f.model, input);

  const auto blob = f.model.serialize();
  const mem::VirtAddr heap = f.sys.process(f.pid).heap_base();
  std::vector<std::uint8_t> staged(blob.size());
  f.sys.read_virt(f.pid, heap + r.layout.xmodel_off, staged);
  EXPECT_EQ(staged, blob);
  // And it still parses from process memory.
  EXPECT_EQ(XModel::deserialize(staged).name(), "resnet50_pt");
}

TEST(DpuRunner, RunWritesMallocStyleMetadata) {
  Fixture f;
  DpuRunner runner{f.sys};
  (void)runner.run(f.pid, f.model, img::make_test_image(64, 64, 2));
  const mem::VirtAddr heap = f.sys.process(f.pid).heap_base();
  // Fig. 12's dump begins "9102 0000 ..." = chunk size 0x291 at offset 8.
  std::uint8_t buf[8];
  f.sys.read_virt(f.pid, heap + 8, buf);
  EXPECT_EQ(buf[0], 0x91);
  EXPECT_EQ(buf[1], 0x02);
}

TEST(DpuRunner, ScoresDeterministicAndStagedToHeap) {
  Fixture f1, f2;
  DpuRunner r1{f1.sys}, r2{f2.sys};
  const img::Image input = img::make_test_image(72, 72, 4);
  const RunResult a = r1.run(f1.pid, f1.model, input);
  const RunResult b = r2.run(f2.pid, f2.model, input);
  EXPECT_EQ(a.scores, b.scores);
  EXPECT_EQ(a.top_class, b.top_class);

  // Output tensor residue staged at output_off.
  const mem::VirtAddr heap = f1.sys.process(f1.pid).heap_base();
  std::vector<std::uint8_t> out_bytes(a.scores.size() * sizeof(float));
  f1.sys.read_virt(f1.pid, heap + a.layout.output_off, out_bytes);
  std::vector<float> staged(a.scores.size());
  std::memcpy(staged.data(), out_bytes.data(), out_bytes.size());
  EXPECT_EQ(staged, a.scores);
}

TEST(DpuRunner, DifferentImagesDifferentScores) {
  Fixture f;
  DpuRunner runner{f.sys};
  const RunResult a =
      runner.run(f.pid, f.model, img::make_test_image(64, 64, 1));
  os::PetaLinuxSystem sys2{os::SystemConfig::test_small()};
  const os::Pid pid2 = sys2.spawn(1000, {"x"}, "pts/1");
  DpuRunner runner2{sys2};
  const RunResult b =
      runner2.run(pid2, f.model, img::make_test_image(64, 64, 99));
  EXPECT_NE(a.scores, b.scores);
}

TEST(Runtime, LaunchCreatesProcessWithPaperArgv) {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  sys.add_user(1000, "victim");
  VitisAiRuntime rt{sys};
  const VictimRun run = rt.launch(1000, "resnet50_pt",
                                  img::make_test_image(64, 64, 3), "pts/1");
  EXPECT_TRUE(sys.alive(run.pid));
  EXPECT_EQ(sys.process(run.pid).cmdline(),
            "./resnet50_pt "
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel "
            "../images/001.jpg");
  EXPECT_EQ(sys.process(run.pid).state(), os::ProcState::kSleeping);
  EXPECT_NE(sys.proc_maps(0, run.pid).find("/dev/dri/renderD128"),
            std::string::npos);
}

TEST(Runtime, ModelCacheReturnsSameInstance) {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  VitisAiRuntime rt{sys};
  const XModel& a = rt.model("resnet50_pt");
  const XModel& b = rt.model("resnet50_pt");
  EXPECT_EQ(&a, &b);
}

TEST(Runtime, LaunchUnknownModelThrows) {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  VitisAiRuntime rt{sys};
  EXPECT_THROW(
      rt.launch(0, "bogus_model", img::make_test_image(8, 8, 1), "pts/0"),
      std::invalid_argument);
}

}  // namespace
}  // namespace msa::vitis
