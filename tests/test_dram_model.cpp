#include "dram/dram_model.h"

#include <gtest/gtest.h>

#include <vector>

namespace msa::dram {
namespace {

DramModel make() { return DramModel{DramConfig::test_small()}; }

TEST(DramModel, FreshMemoryReadsZero) {
  DramModel d = make();
  EXPECT_EQ(d.read8(0x1000), 0u);
  EXPECT_EQ(d.read32(0x2000), 0u);
  EXPECT_EQ(d.read64(0x3000), 0u);
  EXPECT_EQ(d.materialized_blocks(), 0u);  // reads don't materialize
}

TEST(DramModel, Write8ReadBack) {
  DramModel d = make();
  d.write8(0x100, 0xAB);
  EXPECT_EQ(d.read8(0x100), 0xAB);
  EXPECT_EQ(d.read8(0x101), 0u);
}

TEST(DramModel, Write32LittleEndianBytes) {
  DramModel d = make();
  d.write32(0x200, 0x61C6D730);
  EXPECT_EQ(d.read8(0x200), 0x30);
  EXPECT_EQ(d.read8(0x201), 0xD7);
  EXPECT_EQ(d.read8(0x202), 0xC6);
  EXPECT_EQ(d.read8(0x203), 0x61);
}

TEST(DramModel, Write64ReadBack) {
  DramModel d = make();
  d.write64(0x400, 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.read64(0x400), 0x0123456789ABCDEFULL);
  EXPECT_EQ(d.read32(0x400), 0x89ABCDEFu);
  EXPECT_EQ(d.read32(0x404), 0x01234567u);
}

TEST(DramModel, AccessesCrossingBlockBoundary) {
  DramModel d = make();
  // 4 KiB blocks: write across the 0x1000 boundary.
  d.write64(0xFFC, 0x1122334455667788ULL);
  EXPECT_EQ(d.read64(0xFFC), 0x1122334455667788ULL);
  d.write32(0xFFE, 0xA1B2C3D4);
  EXPECT_EQ(d.read32(0xFFE), 0xA1B2C3D4u);
  d.write16(0xFFF, 0xBEEF);
  EXPECT_EQ(d.read16(0xFFF), 0xBEEFu);
}

TEST(DramModel, OutOfRangeThrows) {
  DramModel d = make();
  const PhysAddr end = d.config().end();
  EXPECT_THROW((void)d.read8(end), std::out_of_range);
  EXPECT_THROW(d.write8(end, 1), std::out_of_range);
  EXPECT_THROW((void)d.read32(end - 2), std::out_of_range);  // straddles the end
  EXPECT_THROW((void)d.read64(end - 4), std::out_of_range);
  EXPECT_NO_THROW((void)d.read32(end - 4));
}

TEST(DramModel, BlockRoundTrip) {
  DramModel d = make();
  std::vector<std::uint8_t> data(10000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 13);
  }
  d.write_block(0x800, data);
  std::vector<std::uint8_t> out(data.size());
  d.read_block(0x800, out);
  EXPECT_EQ(out, data);
}

TEST(DramModel, ZeroRangeErasesContent) {
  DramModel d = make();
  d.fill_range(0x1000, 0x3000, 0x5A);
  EXPECT_TRUE(d.any_nonzero(0x1000, 0x3000));
  d.zero_range(0x1800, 0x1000);
  EXPECT_TRUE(d.any_nonzero(0x1000, 0x800));
  EXPECT_FALSE(d.any_nonzero(0x1800, 0x1000));
  EXPECT_TRUE(d.any_nonzero(0x2800, 0x1800));
}

TEST(DramModel, WholeBlockZeroReleasesStorage) {
  DramModel d = make();
  d.fill_range(0x1000, 0x1000, 0xFF);
  EXPECT_EQ(d.materialized_blocks(), 1u);
  d.zero_range(0x1000, 0x1000);
  EXPECT_EQ(d.materialized_blocks(), 0u);
  EXPECT_EQ(d.read8(0x1234), 0u);
}

TEST(DramModel, AnyNonzeroOnUntouchedIsFalse) {
  DramModel d = make();
  EXPECT_FALSE(d.any_nonzero(0, d.config().size));
}

TEST(DramModel, RemanenceSemantics) {
  // The core vulnerability: content persists until explicitly cleared.
  DramModel d = make();
  d.write32(0x5000, 0xDEADBEEF);
  // ... nothing "frees" DRAM; a later reader sees the residue.
  EXPECT_EQ(d.read32(0x5000), 0xDEADBEEFu);
}

TEST(DramModel, ChecksumDetectsDifference) {
  DramModel d = make();
  d.fill_range(0x2000, 0x1000, 0x11);
  const std::uint32_t c1 = d.checksum(0x2000, 0x1000);
  d.write8(0x2800, 0x22);
  EXPECT_NE(d.checksum(0x2000, 0x1000), c1);
}

TEST(DramModel, ChecksumOfZeroRangeStable) {
  DramModel d = make();
  EXPECT_EQ(d.checksum(0, 4096), d.checksum(4096, 4096));
}

TEST(DramModel, StatsAccumulate) {
  DramModel d = make();
  d.reset_stats();
  d.write32(0x100, 1);
  (void)d.read32(0x100);
  (void)d.read8(0x104);
  EXPECT_EQ(d.stats().writes, 1u);
  EXPECT_EQ(d.stats().reads, 2u);
  EXPECT_EQ(d.stats().bytes_written, 4u);
  EXPECT_EQ(d.stats().bytes_read, 5u);
}

TEST(DramModel, RejectsBadConfigs) {
  DramConfig c = DramConfig::test_small();
  c.size = 0;
  EXPECT_THROW(DramModel{c}, std::invalid_argument);
  c.size = 1000;  // not a multiple of 4 KiB
  EXPECT_THROW(DramModel{c}, std::invalid_argument);
}

TEST(DramConfig, ContainsEdges) {
  const DramConfig c = DramConfig::test_small();
  EXPECT_TRUE(c.contains(c.base));
  EXPECT_TRUE(c.contains(c.end() - 1));
  EXPECT_FALSE(c.contains(c.end()));
  EXPECT_TRUE(c.contains(c.base, c.size));
  EXPECT_FALSE(c.contains(c.base, c.size + 1));
  EXPECT_FALSE(c.contains(c.end() - 4, 8));
}

TEST(DramConfig, BoardPresets) {
  EXPECT_EQ(DramConfig::zcu104().size, 2ULL << 30);
  EXPECT_EQ(DramConfig::zcu102().size, 4ULL << 30);
  EXPECT_EQ(DramConfig::zcu104().board_name, "zcu104");
  EXPECT_GT(DramConfig::zcu104().frames(), 500000u);
}

class DramWidthSweep : public ::testing::TestWithParam<int> {};

TEST_P(DramWidthSweep, WriteReadAtArbitraryAlignments) {
  DramModel d = make();
  const int width = GetParam();
  for (PhysAddr base : {0x100ULL, 0xFFDULL, 0x1FFFULL}) {
    const std::uint64_t value = 0xA5A5A5A5A5A5A5A5ULL >> (64 - 8 * width);
    switch (width) {
      case 1: d.write8(base, static_cast<std::uint8_t>(value)); break;
      case 2: d.write16(base, static_cast<std::uint16_t>(value)); break;
      case 4: d.write32(base, static_cast<std::uint32_t>(value)); break;
      case 8: d.write64(base, value); break;
    }
    switch (width) {
      case 1: EXPECT_EQ(d.read8(base), static_cast<std::uint8_t>(value)); break;
      case 2: EXPECT_EQ(d.read16(base), static_cast<std::uint16_t>(value)); break;
      case 4: EXPECT_EQ(d.read32(base), static_cast<std::uint32_t>(value)); break;
      case 8: EXPECT_EQ(d.read64(base), value); break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, DramWidthSweep, ::testing::Values(1, 2, 4, 8));

}  // namespace
}  // namespace msa::dram
