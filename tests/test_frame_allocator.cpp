#include "mem/frame_allocator.h"

#include <gtest/gtest.h>

#include <set>

namespace msa::mem {
namespace {

struct Fixture {
  dram::DramModel dram{dram::DramConfig::test_small()};

  PageFrameAllocator make(SanitizePolicy sanitize = SanitizePolicy::kNone,
                          PlacementPolicy placement =
                              PlacementPolicy::kSequentialLifo,
                          std::uint64_t frames = 64) {
    return PageFrameAllocator{
        dram, FrameAllocatorConfig{.first_pfn = 0x100,
                                   .frame_count = frames,
                                   .sanitize = sanitize,
                                   .placement = placement,
                                   .seed = 5}};
  }
};

TEST(FrameAllocator, SequentialLifoHandsOutAscendingPfns) {
  Fixture f;
  auto a = f.make();
  EXPECT_EQ(a.allocate(1).value(), 0x100u);
  EXPECT_EQ(a.allocate(1).value(), 0x101u);
  EXPECT_EQ(a.allocate(1).value(), 0x102u);
}

TEST(FrameAllocator, LifoReusesMostRecentlyFreed) {
  Fixture f;
  auto a = f.make();
  const Pfn p0 = a.allocate(1).value();
  const Pfn p1 = a.allocate(1).value();
  a.free(p0);
  a.free(p1);
  // LIFO: p1 comes back first — immediate dirty reuse, the worst case for
  // residue exposure to the *next* tenant.
  EXPECT_EQ(a.allocate(2).value(), p1);
  EXPECT_EQ(a.allocate(2).value(), p0);
}

TEST(FrameAllocator, FifoDelaysReuse) {
  Fixture f;
  auto a = f.make(SanitizePolicy::kNone, PlacementPolicy::kSequentialFifo, 8);
  std::vector<Pfn> first;
  for (int i = 0; i < 8; ++i) first.push_back(a.allocate(1).value());
  a.free(first[0]);
  a.free(first[1]);
  // FIFO pops the oldest free entry.
  EXPECT_EQ(a.allocate(2).value(), first[0]);
  EXPECT_EQ(a.allocate(2).value(), first[1]);
}

TEST(FrameAllocator, RandomizedPlacementIsSeededAndScattered) {
  Fixture f1, f2;
  auto a1 = f1.make(SanitizePolicy::kNone, PlacementPolicy::kRandomized, 64);
  auto a2 = f2.make(SanitizePolicy::kNone, PlacementPolicy::kRandomized, 64);
  std::vector<Pfn> s1, s2;
  for (int i = 0; i < 32; ++i) {
    s1.push_back(a1.allocate(1).value());
    s2.push_back(a2.allocate(1).value());
  }
  EXPECT_EQ(s1, s2);  // same seed, same sequence (reproducibility)
  // And the sequence is not simply ascending.
  bool ascending = true;
  for (std::size_t i = 1; i < s1.size(); ++i) {
    if (s1[i] != s1[i - 1] + 1) ascending = false;
  }
  EXPECT_FALSE(ascending);
}

TEST(FrameAllocator, ExhaustionReturnsNullopt) {
  Fixture f;
  auto a = f.make(SanitizePolicy::kNone, PlacementPolicy::kSequentialLifo, 4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(a.allocate(1).has_value());
  EXPECT_FALSE(a.allocate(1).has_value());
  EXPECT_EQ(a.free_frames(), 0u);
  EXPECT_EQ(a.used_frames(), 4u);
}

TEST(FrameAllocator, DoubleFreeThrows) {
  Fixture f;
  auto a = f.make();
  const Pfn p = a.allocate(1).value();
  a.free(p);
  EXPECT_THROW(a.free(p), std::logic_error);
}

TEST(FrameAllocator, ForeignPfnThrows) {
  Fixture f;
  auto a = f.make();
  EXPECT_THROW(a.free(0x99), std::out_of_range);
  EXPECT_THROW((void)a.info(0x1000), std::out_of_range);
}

TEST(FrameAllocator, NoSanitizeLeavesResidue) {
  Fixture f;
  auto a = f.make(SanitizePolicy::kNone);
  const Pfn p = a.allocate(1).value();
  const auto pa = PageFrameAllocator::frame_to_phys(p);
  f.dram.fill_range(pa, PageFrameAllocator::kPageSize, 0xEE);
  a.free(p);
  EXPECT_TRUE(f.dram.any_nonzero(pa, PageFrameAllocator::kPageSize));
  // Next tenant sees the previous tenant's bytes: the paper's bug.
  const Pfn q = a.allocate(2).value();
  EXPECT_EQ(q, p);
  EXPECT_EQ(f.dram.read8(pa), 0xEE);
  EXPECT_EQ(a.stats().dirty_reuses, 1u);
}

TEST(FrameAllocator, ZeroOnFreeScrubsImmediately) {
  Fixture f;
  auto a = f.make(SanitizePolicy::kZeroOnFree);
  const Pfn p = a.allocate(1).value();
  const auto pa = PageFrameAllocator::frame_to_phys(p);
  f.dram.fill_range(pa, PageFrameAllocator::kPageSize, 0xEE);
  a.free(p);
  EXPECT_FALSE(f.dram.any_nonzero(pa, PageFrameAllocator::kPageSize));
  EXPECT_EQ(a.stats().frames_scrubbed, 1u);
  EXPECT_EQ(a.stats().bytes_scrubbed, PageFrameAllocator::kPageSize);
}

TEST(FrameAllocator, ZeroOnAllocLeavesResidueWhileFree) {
  Fixture f;
  auto a = f.make(SanitizePolicy::kZeroOnAlloc);
  const Pfn p = a.allocate(1).value();
  const auto pa = PageFrameAllocator::frame_to_phys(p);
  f.dram.fill_range(pa, PageFrameAllocator::kPageSize, 0xEE);
  a.free(p);
  // Residue persists while the frame sits free — scrapable window!
  EXPECT_TRUE(f.dram.any_nonzero(pa, PageFrameAllocator::kPageSize));
  // ...but the next owner gets a clean page.
  const Pfn q = a.allocate(2).value();
  EXPECT_EQ(q, p);
  EXPECT_FALSE(f.dram.any_nonzero(pa, PageFrameAllocator::kPageSize));
  EXPECT_EQ(a.stats().dirty_reuses, 1u);  // it *was* dirty at hand-out time
}

TEST(FrameAllocator, OwnerTrackingAcrossLifecycle) {
  Fixture f;
  auto a = f.make();
  const Pfn p = a.allocate(42).value();
  EXPECT_EQ(a.info(p).owner_pid, 42);
  a.free(p);
  EXPECT_EQ(a.info(p).owner_pid, 0);
  EXPECT_EQ(a.info(p).last_owner, 42);
  EXPECT_TRUE(a.info(p).ever_used);
}

TEST(FrameAllocator, DirtyFreeFramesForensics) {
  Fixture f;
  auto a = f.make();
  const Pfn p1 = a.allocate(1).value();
  const Pfn p2 = a.allocate(1).value();
  f.dram.fill_range(PageFrameAllocator::frame_to_phys(p1), 64, 0x5A);
  // p2 never written.
  a.free(p1);
  a.free(p2);
  const auto dirty = a.dirty_free_frames();
  ASSERT_EQ(dirty.size(), 1u);
  EXPECT_EQ(dirty[0], p1);
}

TEST(FrameAllocator, PhysFrameConversions) {
  EXPECT_EQ(PageFrameAllocator::frame_to_phys(0x60000), 0x60000000u);
  EXPECT_EQ(PageFrameAllocator::phys_to_frame(0x61C6D730), 0x61C6Du);
}

TEST(FrameAllocator, RejectsBadConfigs) {
  Fixture f;
  EXPECT_THROW(
      (PageFrameAllocator{f.dram, FrameAllocatorConfig{.first_pfn = 0,
                                                       .frame_count = 0}}),
      std::invalid_argument);
  // Pool outside the 16 MiB test DRAM.
  EXPECT_THROW(
      (PageFrameAllocator{f.dram, FrameAllocatorConfig{.first_pfn = 0x10000,
                                                       .frame_count = 10}}),
      std::invalid_argument);
}

struct PolicyCase {
  SanitizePolicy sanitize;
  PlacementPolicy placement;
};

class AllocatorPolicySweep : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(AllocatorPolicySweep, AllocFreeAllInvariants) {
  // Property: under any policy combination, allocate-all then free-all
  // returns the allocator to a consistent state with no frame leaked.
  Fixture f;
  auto a = f.make(GetParam().sanitize, GetParam().placement, 32);
  std::set<Pfn> held;
  for (int i = 0; i < 32; ++i) {
    const auto p = a.allocate(7);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(held.insert(*p).second) << "duplicate frame handed out";
  }
  EXPECT_FALSE(a.allocate(7).has_value());
  for (const Pfn p : held) a.free(p);
  EXPECT_EQ(a.free_frames(), 32u);
  EXPECT_EQ(a.stats().allocations, 32u);
  EXPECT_EQ(a.stats().frees, 32u);
  // Every frame can be allocated again.
  for (int i = 0; i < 32; ++i) ASSERT_TRUE(a.allocate(8).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, AllocatorPolicySweep,
    ::testing::Values(
        PolicyCase{SanitizePolicy::kNone, PlacementPolicy::kSequentialLifo},
        PolicyCase{SanitizePolicy::kNone, PlacementPolicy::kSequentialFifo},
        PolicyCase{SanitizePolicy::kNone, PlacementPolicy::kRandomized},
        PolicyCase{SanitizePolicy::kZeroOnFree, PlacementPolicy::kSequentialLifo},
        PolicyCase{SanitizePolicy::kZeroOnFree, PlacementPolicy::kRandomized},
        PolicyCase{SanitizePolicy::kZeroOnAlloc, PlacementPolicy::kSequentialLifo},
        PolicyCase{SanitizePolicy::kZeroOnAlloc, PlacementPolicy::kSequentialFifo}));

}  // namespace
}  // namespace msa::mem
