// Regression-gate tests: paired sign-flip permutation determinism and
// calibration, fingerprint-derived seeding, direction/metric/min-effect
// semantics of evaluate_gate, the zero-delta-never-trips and
// constructed-regression-always-trips contracts, and store-level
// determinism of the verdict across thread counts and shard layouts.
#include "campaign/gate.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/stats.h"
#include "persist/campaign_store.h"

namespace msa::campaign {
namespace {

TEST(PairedPermutation, DeterministicForSeedAndInput) {
  const std::vector<double> deltas{0.2, -0.1, 0.4, 0.0, 0.3};
  const PermutationResult a = paired_permutation_test(deltas, 42, 5000, false);
  const PermutationResult b = paired_permutation_test(deltas, 42, 5000, false);
  EXPECT_EQ(a.at_least_as_extreme, b.at_least_as_extreme);
  EXPECT_EQ(a.p_value, b.p_value);  // bit-identical, not just close
  EXPECT_EQ(a.paired_cells, 5u);
  EXPECT_DOUBLE_EQ(a.observed_stat, (0.2 - 0.1 + 0.4 + 0.0 + 0.3) / 5.0);

  // A different seed draws different sign patterns (the p-values may
  // coincide by chance at huge iteration counts, the hit counts at 5000
  // resamples realistically do not).
  const PermutationResult c = paired_permutation_test(deltas, 43, 5000, false);
  EXPECT_NE(a.at_least_as_extreme, c.at_least_as_extreme);
}

TEST(PairedPermutation, NoEvidenceCases) {
  // No pairs: nothing to test.
  const PermutationResult empty = paired_permutation_test({}, 1, 1000, false);
  EXPECT_EQ(empty.paired_cells, 0u);
  EXPECT_EQ(empty.p_value, 1.0);

  // Zero iterations: the estimate is defined but vacuous.
  const PermutationResult none =
      paired_permutation_test({0.5, 0.5}, 1, 0, false);
  EXPECT_EQ(none.p_value, 1.0);

  // All-zero deltas: every resample ties the observed statistic, so the
  // ">= observed" rule counts all of them — p is EXACTLY 1, one- and
  // two-sided alike.
  const std::vector<double> zeros(8, 0.0);
  EXPECT_EQ(paired_permutation_test(zeros, 7, 2000, false).p_value, 1.0);
  EXPECT_EQ(paired_permutation_test(zeros, 7, 2000, true).p_value, 1.0);
}

TEST(PairedPermutation, CalibratedOnSixUnanimousDeltas) {
  // Six positive pairs, all the same magnitude: only the all-positive
  // sign assignment reaches the observed mean, so the exact one-sided p
  // is 1/64 ~= 0.0156 and the sampled estimate must sit near it.
  const std::vector<double> deltas(6, 1.0);
  const PermutationResult one =
      paired_permutation_test(deltas, 99, 20000, false);
  EXPECT_NEAR(one.p_value, 1.0 / 64.0, 5e-3);
  // Two-sided doubles it: the all-negative assignment ties |observed|.
  const PermutationResult two =
      paired_permutation_test(deltas, 99, 20000, true);
  EXPECT_NEAR(two.p_value, 2.0 / 64.0, 5e-3);
}

TEST(PairedPermutation, TwoSidedIsSignSymmetric) {
  // Negating every delta negates each resample statistic under the same
  // sign stream, so |stat| comparisons are untouched: identical bytes.
  const std::vector<double> deltas{0.9, -0.2, 0.4, 0.1};
  std::vector<double> negated;
  for (const double d : deltas) negated.push_back(-d);
  const PermutationResult pos = paired_permutation_test(deltas, 5, 4000, true);
  const PermutationResult neg =
      paired_permutation_test(negated, 5, 4000, true);
  EXPECT_EQ(pos.at_least_as_extreme, neg.at_least_as_extreme);
  EXPECT_EQ(pos.p_value, neg.p_value);
}

TEST(GateSeed, DeterministicAndOrderSensitive) {
  EXPECT_EQ(gate_seed(1, 2), gate_seed(1, 2));
  EXPECT_NE(gate_seed(1, 2), gate_seed(2, 1));  // A/B order matters
  EXPECT_NE(gate_seed(1, 2), gate_seed(1, 3));
  // The golden-baseline case — both sides the same grid — still mixes.
  EXPECT_NE(gate_seed(7, 7), 7u);
}

TEST(GateDirectionAndMetric, NamesRoundTrip) {
  for (const GateDirection d :
       {GateDirection::kRegress, GateDirection::kImprove, GateDirection::kAny}) {
    GateDirection parsed{};
    ASSERT_TRUE(parse_gate_direction(gate_direction_name(d), &parsed));
    EXPECT_EQ(parsed, d);
  }
  GateDirection sink{};
  EXPECT_FALSE(parse_gate_direction("sideways", &sink));
  EXPECT_FALSE(parse_gate_direction("", &sink));

  for (const DiffMetric m : {DiffMetric::kSuccessRate, DiffMetric::kDenialRate,
                             DiffMetric::kPsnrP50}) {
    DiffMetric parsed{};
    ASSERT_TRUE(parse_diff_metric(diff_metric_name(m), &parsed));
    EXPECT_EQ(parsed, m);
  }
  DiffMetric msink{};
  EXPECT_FALSE(parse_diff_metric("psnr_p99", &msink));

  EXPECT_EQ(metric_orientation(DiffMetric::kSuccessRate), 1.0);
  EXPECT_EQ(metric_orientation(DiffMetric::kPsnrP50), 1.0);
  EXPECT_EQ(metric_orientation(DiffMetric::kDenialRate), -1.0);
}

CellDistribution gate_cell(std::uint64_t index, const std::string& defense,
                           double delay, std::size_t trials,
                           std::size_t successes, std::size_t denials,
                           double p50) {
  CellDistribution c;
  c.index = index;
  c.coords = {{"defense", AxisValue::of_string(defense)},
              {"delay_s", AxisValue::of_number(delay)}};
  c.trials = trials;
  c.successes = successes;
  c.denials = denials;
  c.p50_psnr = p50;
  c.p90_psnr = p50;
  c.p99_psnr = p50;
  c.success_rate =
      trials == 0 ? 0.0
                  : static_cast<double>(successes) / static_cast<double>(trials);
  c.success_ci = wilson_interval(successes, trials);
  return c;
}

/// 8-cell report: every attack succeeds, nothing denied, strong PSNR.
StatsReport healthy_report() {
  StatsReport r;
  for (std::uint64_t i = 0; i < 8; ++i) {
    r.cells.push_back(gate_cell(i, i < 4 ? "baseline" : "zero_on_free",
                                static_cast<double>(i % 4), 20, 20, 0, 40.0));
  }
  r.trials_analyzed = 160;
  return r;
}

/// The same grid with the defense holding everywhere: zero successes.
StatsReport defended_report() {
  StatsReport r;
  for (std::uint64_t i = 0; i < 8; ++i) {
    r.cells.push_back(gate_cell(i, i < 4 ? "baseline" : "zero_on_free",
                                static_cast<double>(i % 4), 20, 0, 20, 5.0));
  }
  r.trials_analyzed = 160;
  return r;
}

TEST(EvaluateGate, ZeroDeltaSelfDiffNeverTrips) {
  const StatsReport r = healthy_report();
  const DiffReport diff = diff_sweeps(r, r);
  for (const GateDirection dir :
       {GateDirection::kRegress, GateDirection::kImprove, GateDirection::kAny}) {
    for (const DiffMetric m : {DiffMetric::kSuccessRate,
                               DiffMetric::kDenialRate, DiffMetric::kPsnrP50}) {
      GateSpec spec;
      spec.direction = dir;
      spec.metric = m;
      const GateResult g = evaluate_gate(diff, spec, 1234);
      EXPECT_FALSE(g.tripped()) << g.verdict_line();
      EXPECT_EQ(g.permutation.p_value, 1.0);  // exactly, any direction
      EXPECT_NE(g.verdict_line().find("gate clean"), std::string::npos);
    }
  }
}

TEST(EvaluateGate, ConstructedRegressionAlwaysTrips) {
  // Defended -> healthy: success jumps 0/20 -> 20/20 in all 8 cells, the
  // canonical "the defense stopped working" diff.
  const DiffReport diff = diff_sweeps(defended_report(), healthy_report());
  GateSpec spec;  // defaults: success_rate, regress, alpha 0.05
  const GateResult g = evaluate_gate(diff, spec, 77);
  EXPECT_TRUE(g.grid_tripped);
  EXPECT_LE(g.permutation.p_value, 1.0 / 128.0);  // 8 unanimous pairs
  EXPECT_EQ(g.tripped_cells.size(), 8u);
  for (const GateCellVerdict& c : g.tripped_cells) {
    EXPECT_EQ(c.delta, 1.0);
    EXPECT_LE(c.p_value_fdr, 0.05);
  }
  const std::string verdict = g.verdict_line();
  EXPECT_NE(verdict.find("regression gate TRIPPED"), std::string::npos);
  EXPECT_NE(verdict.find("defense=baseline"), std::string::npos);
  EXPECT_NE(verdict.find("[+4 more]"), std::string::npos);  // 8 cells, 4 named

  // The same movement seen from the improve gate is invisible...
  spec.direction = GateDirection::kImprove;
  EXPECT_FALSE(evaluate_gate(diff, spec, 77).tripped());
  // ...and the any gate catches it two-sided.
  spec.direction = GateDirection::kAny;
  EXPECT_TRUE(evaluate_gate(diff, spec, 77).tripped());

  // Reversed sides: the improvement trips improve, not regress.
  const DiffReport rev = diff_sweeps(healthy_report(), defended_report());
  spec.direction = GateDirection::kRegress;
  EXPECT_FALSE(evaluate_gate(rev, spec, 77).tripped());
  spec.direction = GateDirection::kImprove;
  EXPECT_TRUE(evaluate_gate(rev, spec, 77).tripped());
}

TEST(EvaluateGate, DenialMetricIsDefenseOriented) {
  // Denials collapse from 20/20 to 0/20: the denial RATE fell, which is
  // attack-favoring, so with orientation -1 the regress gate trips.
  const DiffReport diff = diff_sweeps(defended_report(), healthy_report());
  GateSpec spec;
  spec.metric = DiffMetric::kDenialRate;
  const GateResult g = evaluate_gate(diff, spec, 5);
  EXPECT_TRUE(g.grid_tripped);
  EXPECT_GT(g.permutation.observed_stat, 0.0);  // oriented: regress-positive
  EXPECT_EQ(g.tripped_cells.size(), 8u);
  EXPECT_EQ(g.tripped_cells[0].delta, -1.0);  // raw delta stays B minus A
}

TEST(EvaluateGate, PsnrMetricGatesOnPermutationOnly) {
  const DiffReport diff = diff_sweeps(defended_report(), healthy_report());
  GateSpec spec;
  spec.metric = DiffMetric::kPsnrP50;  // +35 dB in every cell
  const GateResult g = evaluate_gate(diff, spec, 5);
  EXPECT_TRUE(g.grid_tripped);
  EXPECT_TRUE(g.tripped_cells.empty());  // no per-cell test for percentiles
  EXPECT_DOUBLE_EQ(g.permutation.observed_stat, 35.0);
}

TEST(EvaluateGate, MinEffectSuppressesResolvableButSmallShifts) {
  const DiffReport diff = diff_sweeps(defended_report(), healthy_report());
  GateSpec spec;
  spec.min_effect = 1.5;  // success rates move at most 1.0
  const GateResult g = evaluate_gate(diff, spec, 9);
  EXPECT_FALSE(g.tripped()) << g.verdict_line();
  // The permutation p is still tiny — only the effect floor held it.
  EXPECT_LT(g.permutation.p_value, 0.05);
}

TEST(EvaluateGate, AlphaTightensBothDetectors) {
  // One cell out of 8 regresses (10/20 -> 20/20): its BH-adjusted p is
  // around 3e-3, resolvable at alpha 0.05 per cell, gone at alpha 1e-4.
  StatsReport a = healthy_report();
  a.cells[3].successes = 10;
  a.cells[3].success_rate = 0.5;
  a.cells[3].success_ci = wilson_interval(10, 20);
  const DiffReport diff = diff_sweeps(a, healthy_report());
  GateSpec spec;
  const GateResult loose = evaluate_gate(diff, spec, 21);
  EXPECT_EQ(loose.tripped_cells.size(), 1u);
  spec.alpha = 1e-4;
  const GateResult strict = evaluate_gate(diff, spec, 21);
  EXPECT_TRUE(strict.tripped_cells.empty());
  EXPECT_FALSE(strict.grid_tripped);
}

TEST(EvaluateGate, EmptyDiffTripsNothing) {
  const DiffReport diff;  // no matched cells at all
  for (const GateDirection dir :
       {GateDirection::kRegress, GateDirection::kImprove, GateDirection::kAny}) {
    GateSpec spec;
    spec.direction = dir;
    const GateResult g = evaluate_gate(diff, spec, 3);
    EXPECT_FALSE(g.tripped());
    EXPECT_EQ(g.permutation.p_value, 1.0);
  }
}

TEST(GateStoreLevel, VerdictInvariantAcrossThreadsAndShards) {
  // The acceptance contract: sweep one grid as (a) two threads, (b) one
  // thread, (c) three shard stores in a directory, gate each against the
  // same baseline sweep, and require bit-identical p-values and verdict
  // strings — the permutation seed comes from the stores' fingerprints
  // and the pairs are consumed in AxisKey order, so runtime layout
  // cannot leak into the verdict.
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;

  const auto dir = std::filesystem::temp_directory_path() / "msa_gate_tests";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  const auto sweep = [&](unsigned threads, unsigned shard_index,
                         unsigned shard_count, const std::string& path,
                         bool power_cycled) {
    GridBuilder grid{cfg};
    grid.defenses({"baseline"}).attack_delays_s({5.0, 10.0, 20.0});
    if (power_cycled) grid.axis("power_cycled", {AxisValue::of_bool(true)});
    if (shard_count > 1) grid.shard(shard_index, shard_count);
    CampaignOptions options;
    options.threads = threads;
    options.trials_per_cell = 3;
    persist::StoreManifest manifest;
    manifest.grid_fingerprint = grid.fingerprint();
    manifest.grid_cells = grid.full_size();
    manifest.trials_per_cell = options.trials_per_cell;
    manifest.trial_salt = options.trial_salt;
    manifest.shard_index = shard_index;
    manifest.shard_count = shard_count;
    manifest.axes = grid.axis_schema();
    CampaignRunner runner{options};
    persist::CampaignStore store{path, manifest,
                                 persist::CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
    return manifest.grid_fingerprint;
  };

  // Baseline side A: the power-cycled (defense-favoring) sweep.
  const std::uint64_t fp_a =
      sweep(2, 0, 1, (dir / "a.store").string(), true);
  // Side B, three ways: the same normal grid under different layouts.
  const std::uint64_t fp_b =
      sweep(2, 0, 1, (dir / "b_t2.store").string(), false);
  (void)sweep(1, 0, 1, (dir / "b_t1.store").string(), false);
  std::filesystem::create_directories(dir / "b_shards");
  for (unsigned i = 0; i < 3; ++i) {
    (void)sweep(2, i, 3,
                (dir / "b_shards" / ("s" + std::to_string(i) + ".store"))
                    .string(),
                false);
  }

  const auto gate_against = [&](const std::vector<std::string>& stores) {
    const StatsReport a =
        analyze_sweep(persist::load_sweep({(dir / "a.store").string()}));
    const StatsReport b = analyze_sweep(persist::load_sweep(stores));
    const DiffReport diff = diff_sweeps(a, b);
    EXPECT_EQ(diff.cells.size(), 3u);
    return evaluate_gate(diff, GateSpec{}, gate_seed(fp_a, fp_b));
  };

  const GateResult t2 = gate_against({(dir / "b_t2.store").string()});
  const GateResult t1 = gate_against({(dir / "b_t1.store").string()});
  const GateResult sh =
      gate_against({(dir / "b_shards" / "s0.store").string(),
                    (dir / "b_shards" / "s1.store").string(),
                    (dir / "b_shards" / "s2.store").string()});
  EXPECT_EQ(t2.permutation.p_value, t1.permutation.p_value);  // bit-equal
  EXPECT_EQ(t2.permutation.p_value, sh.permutation.p_value);
  EXPECT_EQ(t2.permutation.at_least_as_extreme,
            sh.permutation.at_least_as_extreme);
  EXPECT_EQ(t2.verdict_line(), t1.verdict_line());
  EXPECT_EQ(t2.verdict_line(), sh.verdict_line());
}

}  // namespace
}  // namespace msa::campaign
