#include "util/hexdump.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace msa::util {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(HexRow, PairGroupingMatchesPaperFigure) {
  // Fig. 11 shows "6c73 2f72 6573 6e65 7435 305f 7074 2f72  ls/resnet50_pt/r"
  const auto data = bytes_of("ls/resnet50_pt/r");
  EXPECT_EQ(hex_row(data),
            "6c73 2f72 6573 6e65 7435 305f 7074 2f72  ls/resnet50_pt/r");
}

TEST(HexRow, NonPrintableRenderedAsDot) {
  const std::vector<std::uint8_t> data{0x00, 0x1F, 0x41, 0x7F, 0xFF, 0x20,
                                       0x7E, 0x0A, 0x42, 0x43, 0x44, 0x45,
                                       0x46, 0x47, 0x48, 0x49};
  const std::string row = hex_row(data);
  const std::string gutter = row.substr(row.size() - 16);
  EXPECT_EQ(gutter, "..A.. ~.BCDEFGHI");
}

TEST(HexRow, ShortRowPadsHexColumn) {
  const std::vector<std::uint8_t> data{0xAB, 0xCD};
  const std::string row = hex_row(data);
  // Hex column width must equal a full row's: 16 bytes -> 32 hex + 7 spaces.
  const std::string full = hex_row(bytes_of("0123456789abcdef"));
  const auto hex_width = full.rfind("  ");
  EXPECT_EQ(row.rfind("  "), hex_width);
}

TEST(HexDump, RowsSplitAt16Bytes) {
  std::vector<std::uint8_t> data(40, 0x41);
  const std::string dump = hex_dump(data);
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);  // 3 rows
}

TEST(HexDump, EmptyInputEmptyOutput) {
  EXPECT_TRUE(hex_dump({}).empty());
}

TEST(HexDump, UppercaseOption) {
  const std::vector<std::uint8_t> data{0xAB};
  HexDumpOptions opts;
  opts.uppercase = true;
  opts.ascii_gutter = false;
  const std::string dump = hex_dump(data, opts);
  EXPECT_NE(dump.find("AB"), std::string::npos);
  EXPECT_EQ(dump.find("ab"), std::string::npos);
}

TEST(HexDump, OffsetsPrefixRows) {
  std::vector<std::uint8_t> data(32, 0x00);
  HexDumpOptions opts;
  opts.offsets = true;
  const std::string dump = hex_dump(data, opts);
  EXPECT_EQ(dump.substr(0, 8), "00000000");
  EXPECT_NE(dump.find("\n00000010"), std::string::npos);
}

TEST(ParseHexDump, RoundTripsDump) {
  std::vector<std::uint8_t> data;
  for (int i = 0; i < 100; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  EXPECT_EQ(parse_hex_dump(hex_dump(data)), data);
}

TEST(ParseHexDump, RoundTripsWithAsciiGutterContainingHexChars) {
  // Gutter text like "abcdef" must not be parsed as hex.
  const auto data = bytes_of("abcdefabcdefabcd");
  EXPECT_EQ(parse_hex_dump(hex_dump(data)), data);
}

TEST(ParseHexDump, RejectsDanglingNibble) {
  EXPECT_THROW(parse_hex_dump("abc"), std::invalid_argument);
}

TEST(ParseHexDump, RejectsNonHex) {
  EXPECT_THROW(parse_hex_dump("zz"), std::invalid_argument);
}

TEST(WordsToBytes, LittleEndianOrder) {
  const std::vector<std::uint32_t> words{0x44434241};
  const auto bytes = words_to_bytes_le(words);
  EXPECT_EQ(bytes, bytes_of("ABCD"));
}

TEST(WordsToBytes, MultipleWords) {
  const std::vector<std::uint32_t> words{0x03020100, 0x07060504};
  const auto bytes = words_to_bytes_le(words);
  ASSERT_EQ(bytes.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(bytes[i], static_cast<std::uint8_t>(i));
  }
}

TEST(AsciiOrDot, Boundaries) {
  EXPECT_EQ(ascii_or_dot(0x1F), '.');
  EXPECT_EQ(ascii_or_dot(0x20), ' ');
  EXPECT_EQ(ascii_or_dot(0x7E), '~');
  EXPECT_EQ(ascii_or_dot(0x7F), '.');
  EXPECT_EQ(ascii_or_dot(0xFF), '.');
}

class HexDumpWidthSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HexDumpWidthSweep, RoundTripAtAnyRowWidth) {
  HexDumpOptions opts;
  opts.bytes_per_row = GetParam();
  std::vector<std::uint8_t> data(61);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(255 - i);
  }
  EXPECT_EQ(parse_hex_dump(hex_dump(data, opts)), data);
}

INSTANTIATE_TEST_SUITE_P(Widths, HexDumpWidthSweep,
                         ::testing::Values(4, 8, 16, 32));

}  // namespace
}  // namespace msa::util
