#include "attack/hexdump_analyzer.h"

#include <gtest/gtest.h>

namespace msa::attack {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(HexDumpAnalyzer, GrepFindsNeedleWithRowText) {
  // Fig. 11 replay: grep "resnet50" over the residue.
  std::vector<std::uint8_t> residue(64, 0);
  const std::string needle_ctx = "ls/resnet50_pt/r";
  std::copy(needle_ctx.begin(), needle_ctx.end(), residue.begin() + 16);
  HexDumpAnalyzer a{residue};
  const auto hits = a.grep("resnet50");
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].byte_offset, 19u);
  EXPECT_EQ(hits[0].row, 1u);
  EXPECT_EQ(hits[0].row_text,
            "6c73 2f72 6573 6e65 7435 305f 7074 2f72  ls/resnet50_pt/r");
}

TEST(HexDumpAnalyzer, GrepMultipleHits) {
  std::string s = "xxresnet50yyresnet50zz";
  const auto data = bytes_of(s);
  HexDumpAnalyzer a{data};
  EXPECT_EQ(a.grep("resnet50").size(), 2u);
}

TEST(HexDumpAnalyzer, GrepMissReturnsEmpty) {
  const auto data = bytes_of("nothing interesting here");
  HexDumpAnalyzer a{data};
  EXPECT_TRUE(a.grep("resnet50").empty());
}

TEST(HexDumpAnalyzer, UniformRunsFindFFBlocks) {
  // Fig. 12 replay: rows of FFFF FFFF from the corrupted image.
  std::vector<std::uint8_t> residue(16 * 20, 0x00);
  for (std::size_t i = 16 * 4; i < 16 * 12; ++i) residue[i] = 0xFF;
  for (std::size_t i = 16 * 15; i < 16 * 18; ++i) residue[i] = 0xFF;
  HexDumpAnalyzer a{residue};
  const auto runs = a.uniform_runs(0xFF, 3);
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0], (std::pair<std::size_t, std::size_t>{4, 8}));
  EXPECT_EQ(runs[1], (std::pair<std::size_t, std::size_t>{15, 3}));
}

TEST(HexDumpAnalyzer, UniformRunsRespectMinRows) {
  std::vector<std::uint8_t> residue(16 * 6, 0x00);
  for (std::size_t i = 16; i < 32; ++i) residue[i] = 0xFF;  // single row
  HexDumpAnalyzer a{residue};
  EXPECT_TRUE(a.uniform_runs(0xFF, 2).empty());
  EXPECT_EQ(a.uniform_runs(0xFF, 1).size(), 1u);
}

TEST(HexDumpAnalyzer, FindByteRunLocatesMarker) {
  // The 0x555555 profiling marker start.
  std::vector<std::uint8_t> residue(500, 0x00);
  for (std::size_t i = 123; i < 123 + 100; ++i) residue[i] = 0x55;
  HexDumpAnalyzer a{residue};
  EXPECT_EQ(a.find_byte_run(0x55, 48), 123u);
  EXPECT_EQ(a.find_byte_run(0x55, 101), HexDumpAnalyzer::npos);
  EXPECT_EQ(a.find_byte_run(0xAA, 1), HexDumpAnalyzer::npos);
}

TEST(HexDumpAnalyzer, FindByteRunIgnoresShorterRuns) {
  std::vector<std::uint8_t> residue(200, 0x00);
  for (std::size_t i = 10; i < 20; ++i) residue[i] = 0x55;    // 10 bytes
  for (std::size_t i = 100; i < 160; ++i) residue[i] = 0x55;  // 60 bytes
  HexDumpAnalyzer a{residue};
  EXPECT_EQ(a.find_byte_run(0x55, 48), 100u);
}

TEST(HexDumpAnalyzer, FindByteRunEdgeCases) {
  std::vector<std::uint8_t> tiny{0x55, 0x55};
  HexDumpAnalyzer a{tiny};
  EXPECT_EQ(a.find_byte_run(0x55, 2), 0u);
  EXPECT_EQ(a.find_byte_run(0x55, 3), HexDumpAnalyzer::npos);
  EXPECT_EQ(a.find_byte_run(0x55, 0), HexDumpAnalyzer::npos);
}

TEST(HexDumpAnalyzer, StringsExtraction) {
  std::vector<std::uint8_t> residue;
  const std::string path = "/usr/share/vitis_ai_library/models/resnet50_pt";
  residue.push_back(0);
  residue.insert(residue.end(), path.begin(), path.end());
  residue.push_back(0);
  HexDumpAnalyzer a{residue};
  const auto strs = a.strings(6);
  ASSERT_EQ(strs.size(), 1u);
  EXPECT_EQ(strs[0], path);
}

TEST(HexDumpAnalyzer, DumpTextRowCount) {
  std::vector<std::uint8_t> residue(16 * 3, 0x41);
  HexDumpAnalyzer a{residue};
  const std::string dump = a.dump_text();
  EXPECT_EQ(std::count(dump.begin(), dump.end(), '\n'), 2);
}

TEST(HexDumpAnalyzer, RenderRowOutOfRangeIsEmpty) {
  std::vector<std::uint8_t> residue(16, 0);
  HexDumpAnalyzer a{residue};
  EXPECT_FALSE(a.render_row(0).empty());
  EXPECT_TRUE(a.render_row(1).empty());
}

}  // namespace
}  // namespace msa::attack
