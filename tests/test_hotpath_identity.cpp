// Hot-path vectorization identity tests against a CHECKED-IN golden
// store written by the PRE-vectorization binary (before batched
// remanence sampling, SIMD scoring, pooled victim boards and bulk
// devmem landed). The contract: the optimized trial pipeline is an
// observable no-op — every trial record (doubles bit for bit), every
// cell aggregate and the manifest must match the golden store at any
// thread count, with the SIMD kernels on or off.
//
// The fixture (tests/data/golden_hotpath_vec.store) was produced by the
// pre-optimization binary with:
//   campaign_sweep --threads 2 --trials 2 --defenses baseline
//                  --models resnet50_pt --delays 0,1,5 --scrubbers 0
//                  --axis power_cycled=0,1 --axis corrupt_fraction=0.25,1
//                  --store golden_hotpath_vec.store
// over the default 96x96 base scenario: 12 cells x 2 trials spanning
// remanence decay (power_cycled x delay) and input corruption — the two
// paths the vectorization rewrote draw-for-draw.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/stats.h"
#include "img/image.h"
#include "img/score_kernels.h"
#include "persist/campaign_store.h"
#include "util/prng.h"

namespace msa {
namespace {

std::string data_path(const char* name) {
  return std::string{MSA_TEST_DATA_DIR} + "/" + name;
}

/// Restores the process-wide SIMD toggle even when an assertion fails.
struct SimdGuard {
  explicit SimdGuard(bool enabled) { img::set_simd_enabled(enabled); }
  ~SimdGuard() { img::set_simd_enabled(true); }
};

/// The grid the golden store was swept over, axes in the CLI order the
/// fixture command used (legacy flags first, --axis flags after).
campaign::GridBuilder golden_grid() {
  attack::ScenarioConfig base;
  base.image_width = 96;
  base.image_height = 96;
  campaign::GridBuilder grid{base};
  grid.defenses({"baseline"})
      .models({"resnet50_pt"})
      .attack_delays_s({0.0, 1.0, 5.0})
      .scrubber_rates({0.0});
  grid.axis("power_cycled", {campaign::AxisValue::of_bool(false),
                             campaign::AxisValue::of_bool(true)});
  grid.axis("corrupt_fraction", {campaign::AxisValue::of_number(0.25),
                                 campaign::AxisValue::of_number(1.0)});
  return grid;
}

/// Sweeps the golden grid into a fresh store and returns its path.
std::string run_sweep(unsigned threads, bool simd, const char* tag) {
  const SimdGuard guard{simd};
  const campaign::GridBuilder grid = golden_grid();
  campaign::CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = 2;

  persist::StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;
  manifest.axes = grid.axis_schema();

  const auto dir =
      std::filesystem::temp_directory_path() / "msa_hotpath_identity";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / (std::string{tag} + ".store")).string();
  std::filesystem::remove(path);
  campaign::CampaignRunner runner{options};
  persist::CampaignStore store{path, manifest,
                               persist::CampaignStore::Mode::kCreate};
  (void)runner.run(grid, store);
  return path;
}

/// Bit-exact double comparison: NaN-safe, distinguishes -0.0.
void expect_bits_eq(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

/// Full-contents comparison. read_store sorts cells by index and trials
/// by (cell, trial), so record-arrival order (thread-dependent) never
/// leaks into the comparison.
void expect_stores_identical(const std::string& fresh_path) {
  const persist::StoreContents golden =
      persist::read_store(data_path("golden_hotpath_vec.store"));
  const persist::StoreContents fresh = persist::read_store(fresh_path);

  EXPECT_FALSE(golden.truncated_tail);
  EXPECT_FALSE(fresh.truncated_tail);
  EXPECT_EQ(fresh.manifest, golden.manifest);

  ASSERT_EQ(fresh.trials.size(), golden.trials.size());
  for (std::size_t i = 0; i < golden.trials.size(); ++i) {
    const persist::TrialRecord& g = golden.trials[i];
    const persist::TrialRecord& f = fresh.trials[i];
    const std::string at = "trial[" + std::to_string(i) + "] cell " +
                           std::to_string(g.cell_index) + " trial " +
                           std::to_string(g.trial);
    EXPECT_EQ(f.cell_index, g.cell_index) << at;
    EXPECT_EQ(f.trial, g.trial) << at;
    EXPECT_EQ(f.denied, g.denied) << at;
    EXPECT_EQ(f.model_identified, g.model_identified) << at;
    EXPECT_EQ(f.denial_reason, g.denial_reason) << at;
    expect_bits_eq(f.pixel_match, g.pixel_match, at + " pixel_match");
    expect_bits_eq(f.psnr, g.psnr, at + " psnr");
    expect_bits_eq(f.descriptor_pixel_match, g.descriptor_pixel_match,
                   at + " descriptor_pixel_match");
  }

  ASSERT_EQ(fresh.cells.size(), golden.cells.size());
  for (std::size_t i = 0; i < golden.cells.size(); ++i) {
    const campaign::CellStats& g = golden.cells[i];
    const campaign::CellStats& f = fresh.cells[i];
    const std::string at = "cell[" + std::to_string(i) + "] " +
                           g.coords_text();
    EXPECT_EQ(f.index, g.index) << at;
    EXPECT_EQ(f.coords_text(), g.coords_text()) << at;
    EXPECT_EQ(f.trials, g.trials) << at;
    EXPECT_EQ(f.full_successes, g.full_successes) << at;
    EXPECT_EQ(f.model_identified, g.model_identified) << at;
    EXPECT_EQ(f.denials, g.denials) << at;
    EXPECT_EQ(f.first_denial_reason, g.first_denial_reason) << at;
    expect_bits_eq(f.mean_pixel_match, g.mean_pixel_match,
                   at + " mean_pixel_match");
    expect_bits_eq(f.mean_psnr_db, g.mean_psnr_db, at + " mean_psnr_db");
    expect_bits_eq(f.mean_descriptor_pixel_match,
                   g.mean_descriptor_pixel_match,
                   at + " mean_descriptor_pixel_match");
  }

  // The derived reports (what regression gates diff) follow: identical
  // inputs must render identical bytes.
  const campaign::StatsReport golden_report = campaign::analyze_sweep(
      persist::load_sweep({data_path("golden_hotpath_vec.store")}));
  const campaign::StatsReport fresh_report =
      campaign::analyze_sweep(persist::load_sweep({fresh_path}));
  EXPECT_EQ(fresh_report.to_text(), golden_report.to_text());
  EXPECT_EQ(fresh_report.to_csv(), golden_report.to_csv());
  EXPECT_EQ(fresh_report.to_json(), golden_report.to_json());
}

TEST(HotpathIdentity, SingleThreadSimdMatchesGolden) {
  expect_stores_identical(run_sweep(1, true, "t1_simd"));
}

TEST(HotpathIdentity, EightThreadsSimdMatchesGolden) {
  expect_stores_identical(run_sweep(8, true, "t8_simd"));
}

TEST(HotpathIdentity, SingleThreadScalarMatchesGolden) {
  expect_stores_identical(run_sweep(1, false, "t1_scalar"));
}

TEST(HotpathIdentity, EightThreadsScalarMatchesGolden) {
  expect_stores_identical(run_sweep(8, false, "t8_scalar"));
}

// ---- kernel-level SIMD/scalar equivalence ------------------------------
//
// The sweep above only exercises the all-or-nothing PSNR outcomes the
// attack produces (exact reconstruction or zeros), so the kernels are
// additionally pinned on random images with nonzero MSE and on widths
// that exercise every vector-tail length.

img::Image random_image(std::uint32_t w, std::uint32_t h,
                        std::uint64_t seed) {
  img::Image out{w, h};
  util::Prng prng{seed};
  for (img::Rgb& px : out.pixels()) {
    const std::uint64_t word = prng();
    px.r = static_cast<std::uint8_t>(word & 0xFF);
    px.g = static_cast<std::uint8_t>((word >> 8) & 0xFF);
    px.b = static_cast<std::uint8_t>((word >> 16) & 0xFF);
  }
  return out;
}

/// The pre-vectorization scoring loops, verbatim: sequential double
/// accumulation of squared channel differences and a scalar pixel walk.
double reference_psnr(const img::Image& a, const img::Image& b) {
  double sum = 0.0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    const img::Rgb& pa = a.pixels()[i];
    const img::Rgb& pb = b.pixels()[i];
    const double dr = static_cast<double>(pa.r) - pb.r;
    const double dg = static_cast<double>(pa.g) - pb.g;
    const double db = static_cast<double>(pa.b) - pb.b;
    sum += dr * dr + dg * dg + db * db;
  }
  const double mse = sum / static_cast<double>(a.pixel_count() * 3);
  if (mse == 0.0) return 99.0;
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

double reference_match(const img::Image& a, const img::Image& b) {
  std::size_t same = 0;
  for (std::size_t i = 0; i < a.pixel_count(); ++i) {
    if (a.pixels()[i] == b.pixels()[i]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(a.pixel_count());
}

TEST(ScoreKernels, SimdAndScalarAgreeBitForBitWithReference) {
  // Widths hit every SSE2 tail (16-pixel blocks) and NEON tail; heights
  // include 1 so tiny totals are covered too.
  const std::uint32_t sizes[][2] = {{1, 1},   {3, 1},  {15, 1}, {16, 1},
                                    {17, 1},  {31, 3}, {33, 2}, {48, 5},
                                    {96, 96}, {97, 7}};
  std::uint64_t seed = 0x5eedULL;
  for (const auto& wh : sizes) {
    const img::Image a = random_image(wh[0], wh[1], ++seed);
    img::Image b = random_image(wh[0], wh[1], ++seed);
    // Force some exact pixel matches so match_count has work on both
    // sides of the comparison.
    for (std::size_t i = 0; i < b.pixel_count(); i += 3) {
      b.pixels()[i] = a.pixels()[i];
    }
    const double want_match = reference_match(a, b);
    const double want_psnr = reference_psnr(a, b);
    for (const bool simd : {true, false}) {
      const SimdGuard guard{simd};
      const std::string at = std::string{"size "} +
                             std::to_string(wh[0]) + "x" +
                             std::to_string(wh[1]) +
                             (simd ? " simd" : " scalar") + " (backend " +
                             img::simd_backend() + ")";
      expect_bits_eq(img::pixel_match_fraction(a, b), want_match,
                     at + " pixel_match");
      expect_bits_eq(img::psnr_db(a, b), want_psnr, at + " psnr");
    }
  }
}

TEST(ScoreKernels, IdenticalAndDisjointImagesScoreExactly) {
  const img::Image a = random_image(97, 5, 0xabcdULL);
  img::Image inverted = a;
  for (img::Rgb& px : inverted.pixels()) {
    px.r = static_cast<std::uint8_t>(~px.r);
    px.g = static_cast<std::uint8_t>(~px.g);
    px.b = static_cast<std::uint8_t>(~px.b);
  }
  for (const bool simd : {true, false}) {
    const SimdGuard guard{simd};
    EXPECT_EQ(img::pixel_match_fraction(a, a), 1.0);
    EXPECT_EQ(img::psnr_db(a, a), 99.0);
    EXPECT_EQ(img::pixel_match_fraction(a, inverted), 0.0);
    expect_bits_eq(img::psnr_db(a, inverted), reference_psnr(a, inverted),
                   "inverted psnr");
  }
}

TEST(ScoreKernels, BackendReportsToggleState) {
  {
    const SimdGuard guard{false};
    EXPECT_FALSE(img::simd_enabled());
    EXPECT_STREQ(img::simd_backend(), "scalar");
  }
  // With the toggle restored the backend is whatever the build compiled
  // in; scalar (with simd_enabled() false, since set_simd_enabled is a
  // no-op there) is the answer on non-SSE2/NEON targets or
  // -DMSA_ENABLE_SIMD=OFF.
  const std::string backend = img::simd_backend();
  EXPECT_TRUE(backend == "sse2" || backend == "neon" || backend == "scalar")
      << backend;
  EXPECT_EQ(img::simd_enabled(), backend != "scalar");
}

}  // namespace
}  // namespace msa
