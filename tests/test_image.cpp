#include "img/image.h"

#include <gtest/gtest.h>

namespace msa::img {
namespace {

TEST(Rgb, PackedRoundTrip) {
  const Rgb p{0x12, 0x34, 0x56};
  EXPECT_EQ(p.packed(), 0x123456u);
  EXPECT_EQ(Rgb::from_packed(0x123456), p);
}

TEST(Rgb, SentinelValues) {
  EXPECT_EQ(kCorruptPixel.packed(), 0xFFFFFFu);
  EXPECT_EQ(kProfilingPixel.packed(), 0x555555u);
}

TEST(Image, ConstructionAndFill) {
  Image img{4, 3, Rgb{1, 2, 3}};
  EXPECT_EQ(img.width(), 4u);
  EXPECT_EQ(img.height(), 3u);
  EXPECT_EQ(img.pixel_count(), 12u);
  EXPECT_EQ(img.at(3, 2), (Rgb{1, 2, 3}));
}

TEST(Image, ZeroDimensionThrows) {
  EXPECT_THROW((Image{0, 5}), std::invalid_argument);
  EXPECT_THROW((Image{5, 0}), std::invalid_argument);
}

TEST(Image, AtOutOfRangeThrows) {
  Image img{2, 2};
  EXPECT_THROW((void)img.at(2, 0), std::out_of_range);
  EXPECT_THROW((void)img.at(0, 2), std::out_of_range);
}

TEST(Image, RgbBytesRoundTrip) {
  const Image img = make_test_image(7, 5, 3);
  const auto bytes = img.to_rgb_bytes();
  EXPECT_EQ(bytes.size(), 7u * 5 * 3);
  EXPECT_EQ(Image::from_rgb_bytes(bytes, 7, 5), img);
}

TEST(Image, RgbBytesOrderIsRGB) {
  Image img{1, 1, Rgb{0xAA, 0xBB, 0xCC}};
  const auto bytes = img.to_rgb_bytes();
  EXPECT_EQ(bytes[0], 0xAA);
  EXPECT_EQ(bytes[1], 0xBB);
  EXPECT_EQ(bytes[2], 0xCC);
}

TEST(Image, FromRgbBytesTooShortThrows) {
  std::vector<std::uint8_t> bytes(10);
  EXPECT_THROW(Image::from_rgb_bytes(bytes, 2, 2), std::invalid_argument);
}

TEST(Image, WordsRoundTrip) {
  const Image img = make_test_image(6, 6, 11);
  EXPECT_EQ(Image::from_words(img.to_words(), 6, 6), img);
}

TEST(Image, CorruptedImageIsAllFF) {
  // The paper's Fig. 4 corruption: pixels become 0xFFFFFF, so the raw
  // bytes staged to DRAM become an unbroken FF run.
  Image img = make_test_image(8, 8, 1);
  img.fill_region(kCorruptPixel, 1.0);
  for (const std::uint8_t b : img.to_rgb_bytes()) EXPECT_EQ(b, 0xFF);
}

TEST(Image, PartialFillRegion) {
  Image img{10, 10, Rgb{0, 0, 0}};
  img.fill_region(Rgb{9, 9, 9}, 0.2);
  std::size_t filled = 0;
  for (const Rgb& p : img.pixels()) {
    if (p == Rgb{9, 9, 9}) ++filled;
  }
  EXPECT_EQ(filled, 20u);
}

TEST(Image, FillRegionClampsFraction) {
  Image img{2, 2, Rgb{1, 1, 1}};
  img.fill_region(Rgb{2, 2, 2}, 5.0);
  for (const Rgb& p : img.pixels()) EXPECT_EQ(p, (Rgb{2, 2, 2}));
  img.fill_region(Rgb{3, 3, 3}, -1.0);
  for (const Rgb& p : img.pixels()) EXPECT_EQ(p, (Rgb{2, 2, 2}));
}

TEST(TestImage, DeterministicPerSeed) {
  EXPECT_EQ(make_test_image(16, 16, 5), make_test_image(16, 16, 5));
  EXPECT_NE(make_test_image(16, 16, 5), make_test_image(16, 16, 6));
}

TEST(Metrics, IdenticalImages) {
  const Image img = make_test_image(12, 12, 2);
  EXPECT_DOUBLE_EQ(pixel_match_fraction(img, img), 1.0);
  EXPECT_DOUBLE_EQ(psnr_db(img, img), 99.0);
}

TEST(Metrics, SizeMismatch) {
  const Image a = make_test_image(4, 4, 1);
  const Image b = make_test_image(5, 5, 1);
  EXPECT_DOUBLE_EQ(pixel_match_fraction(a, b), 0.0);
  EXPECT_LT(psnr_db(a, b), 0.0);
}

TEST(Metrics, PartialMatchFraction) {
  Image a{10, 1, Rgb{0, 0, 0}};
  Image b = a;
  for (std::uint32_t x = 0; x < 5; ++x) b.at(x, 0) = Rgb{1, 1, 1};
  EXPECT_DOUBLE_EQ(pixel_match_fraction(a, b), 0.5);
}

TEST(Metrics, PsnrDecreasesWithDamage) {
  const Image original = make_test_image(16, 16, 3);
  Image slightly = original;
  slightly.at(0, 0) = Rgb{255, 255, 255};
  Image badly = original;
  badly.fill_region(Rgb{255, 255, 255}, 0.5);
  EXPECT_GT(psnr_db(original, slightly), psnr_db(original, badly));
  EXPECT_GT(psnr_db(original, badly), 0.0);
}

TEST(Resize, IdentityWhenSameSize) {
  const Image img = make_test_image(9, 9, 4);
  EXPECT_EQ(resize_nearest(img, 9, 9), img);
}

TEST(Resize, DownscaleSamplesSource) {
  Image img{4, 4, Rgb{0, 0, 0}};
  img.at(0, 0) = Rgb{10, 10, 10};
  const Image half = resize_nearest(img, 2, 2);
  EXPECT_EQ(half.width(), 2u);
  EXPECT_EQ(half.at(0, 0), (Rgb{10, 10, 10}));
}

TEST(Resize, UpscaleReplicates) {
  Image img{2, 1, Rgb{5, 5, 5}};
  img.at(1, 0) = Rgb{7, 7, 7};
  const Image big = resize_nearest(img, 4, 2);
  EXPECT_EQ(big.at(0, 0), (Rgb{5, 5, 5}));
  EXPECT_EQ(big.at(1, 1), (Rgb{5, 5, 5}));
  EXPECT_EQ(big.at(2, 0), (Rgb{7, 7, 7}));
  EXPECT_EQ(big.at(3, 1), (Rgb{7, 7, 7}));
}

}  // namespace
}  // namespace msa::img
