// Cross-module integration scenarios that exercise several subsystems in
// one flow: monitoring + scraping + recovery, streams + scrubbers,
// firewalls + shells — the combinations a real deployment would see.
#include <gtest/gtest.h>

#include "attack/command_shell.h"
#include "attack/descriptor_scan.h"
#include "attack/model_recovery.h"
#include "attack/orchestrator.h"
#include "attack/residue_monitor.h"
#include "attack/scenario.h"
#include "os/scrubber.h"
#include "vitis/stream_runner.h"
#include "vitis/workload.h"

namespace msa {
namespace {

struct Board {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};

  Board() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
  }
};

TEST(Integration, MonitorTriggersAttackWithoutPs) {
  // Full ps-free attack chain: the monitor detects DRAM churn, the
  // attacker finds the (single) new pid by diffing, then scrapes.
  Board b;
  attack::ResidueMonitor monitor{
      b.dbg,
      mem::PageFrameAllocator::frame_to_phys(b.sys.config().pool_first_pfn),
      64};
  (void)monitor.poll();

  const img::Image secret = img::make_test_image(48, 48, 77);
  const vitis::VictimRun run =
      b.runtime.launch(1000, "resnet50_pt", secret, "pts/1");

  const attack::ActivityDelta delta = monitor.poll();
  ASSERT_TRUE(delta.any());

  // The monitor's extent names the physical pages; scrape them directly.
  attack::MemoryScraper scraper{b.dbg};
  const dram::PhysAddr first_changed =
      mem::PageFrameAllocator::frame_to_phys(b.sys.config().pool_first_pfn) +
      delta.changed_pages.front() * mem::kPageSize;
  b.sys.terminate(run.pid);
  const attack::ScrapedDump scan = scraper.scrape_physical_range(
      first_changed, delta.changed_bytes());

  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  EXPECT_EQ(db.identify(scan.bytes).value_or(""), "resnet50_pt");
  EXPECT_TRUE(attack::recover_model(scan.bytes).has_value());
}

TEST(Integration, StreamVictimThenScrubberRace) {
  // A video pipeline exits; a slow scrubber starts cleaning; the attacker
  // arrives mid-scrub. Early ring slots (low pages) die first.
  Board b;
  const os::Pid pid = b.sys.spawn(1000, {"./pipeline"}, "pts/1");
  vitis::StreamRunner runner{b.sys};
  std::vector<img::Image> frames;
  for (int i = 0; i < 6; ++i) {
    frames.push_back(img::make_test_image(40, 40, 500 + i));
  }
  (void)runner.run(pid, vitis::make_zoo_model("resnet50_pt"), frames, 4);

  attack::AddressResolver resolver{b.dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(pid);
  b.sys.terminate(pid);

  const auto full = attack::MemoryScraper{b.dbg}.scrape(target);
  const std::size_t frames_before = attack::recover_frame_ring(full).size();
  ASSERT_EQ(frames_before, 4u);

  // Scrub half the heap's pages, then re-scrape.
  os::ScrubberDaemon scrubber{b.sys, 1e12};
  const std::uint64_t half_pages = target.page_pa.size() / 2;
  // Rate chosen so run_for(1s) scrubs exactly half_pages pages.
  os::ScrubberDaemon limited{b.sys, static_cast<double>(half_pages) *
                                        mem::kPageSize};
  (void)limited.run_for(1.0);

  const auto partial = attack::MemoryScraper{b.dbg}.scrape(target);
  const std::size_t frames_after = attack::recover_frame_ring(partial).size();
  EXPECT_LT(frames_after, frames_before);
  (void)scrubber;
}

TEST(Integration, ShellDrivenAttackUnderFirewallFailsClosed) {
  Board b;
  const vitis::VictimRun run = b.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 5), "pts/1");

  dbg::MemoryFirewall fw{b.sys, dbg::FirewallMode::kOwnerOrResidue};
  b.dbg.set_firewall(&fw);
  attack::CommandShell shell{b.dbg};

  // maps/v2p still work (the firewall guards only physical reads) ...
  EXPECT_NE(shell.execute("maps " + std::to_string(run.pid)).find("[heap]"),
            std::string::npos);
  // ... but the scrape dies at the first devmem.
  const std::string out = shell.execute("scrape " + std::to_string(run.pid));
  EXPECT_EQ(out.substr(0, 6), "error:");
  EXPECT_NE(out.find("firewall"), std::string::npos);
  b.dbg.set_firewall(nullptr);
}

TEST(Integration, WorkloadChurnThenTargetedLiveAttack) {
  // Churn fills the pool with residue; the attacker still singles out a
  // specific live victim via the classic four steps, undisturbed by the
  // noise of other tenants' leftovers.
  Board b;
  b.sys.add_user(1002, "tenant2");
  vitis::WorkloadGenerator gen{29};
  vitis::WorkloadParams p;
  p.events = 6;
  p.image_side = 40;
  vitis::WorkloadExecutor exec{b.sys, b.runtime};
  (void)exec.run(gen.generate(p));

  attack::ProfileDb profiles;
  {
    attack::ScenarioConfig pc;
    pc.system = os::SystemConfig::test_small();
    pc.model_name = "squeezenet_pt";
    pc.image_width = 40;
    pc.image_height = 40;
    profiles.add(attack::profile_on_twin_board(pc));
  }
  attack::AttackOrchestrator orch{b.dbg, attack::SignatureDb::for_zoo(),
                                  std::move(profiles)};

  const img::Image secret = img::make_test_image(40, 40, 4242);
  const vitis::VictimRun victim =
      b.runtime.launch(1000, "squeezenet_pt", secret, "pts/1");
  const auto entry = orch.find_victim("squeezenet");
  ASSERT_TRUE(entry.has_value());
  const attack::ResolvedTarget target = orch.resolve(entry->pid);
  b.sys.terminate(victim.pid);
  const attack::AttackReport report = orch.attack_after_termination(target);

  EXPECT_EQ(report.identified_model, "squeezenet_pt");
  ASSERT_TRUE(report.reconstructed_image.has_value());
  EXPECT_EQ(*report.reconstructed_image, secret);
}

TEST(Integration, DescriptorAndProfilePathsAgree) {
  // The two independent reconstruction paths must produce the same image.
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 56;
  cfg.image_height = 56;
  const attack::ScenarioResult r = attack::run_scenario(cfg);
  ASSERT_TRUE(r.report.reconstructed_image.has_value());
  ASSERT_TRUE(r.report.descriptor_image.has_value());
  EXPECT_EQ(*r.report.reconstructed_image, *r.report.descriptor_image);
}

}  // namespace
}  // namespace msa
