// Lease-log protocol tests: the claim/renew/complete/reset record
// stream, the incremental directory scanner, and the LeaseScheduler's
// reclamation edge cases — torn lease tails, two workers racing one
// cell (exactly-once completion), and a worker resurrecting after its
// lease was reclaimed (its stale completion must be ignored).
#include "persist/lease_log.h"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <set>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "persist/campaign_store.h"

namespace msa::persist {
namespace {

using campaign::CampaignCell;
using campaign::CampaignOptions;
using campaign::CampaignRunner;
using campaign::CellStats;
using campaign::ClaimedCell;
using campaign::GridBuilder;

std::string tmp_dir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "msa_lease_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 delays = 4 cells; small enough that protocol tests can
/// enumerate every claim.
GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"}).attack_delays_s({0.0, 5.0});
  return grid;
}

StoreManifest manifest_for(const GridBuilder& grid, unsigned trials = 1) {
  StoreManifest m;
  m.grid_fingerprint = grid.fingerprint();
  m.grid_cells = grid.full_size();
  m.trials_per_cell = trials;
  m.trial_salt = CampaignOptions{}.trial_salt;
  return m;
}

/// Scheduler options tuned for tests: leases expire after one idle scan
/// round and idle waits are ~instant, so reclamation paths run in
/// milliseconds without wall-clock assumptions.
LeaseSchedulerOptions fast_expiry() {
  LeaseSchedulerOptions options;
  options.expiry_scans = 1;
  options.idle_backoff = std::chrono::milliseconds{1};
  return options;
}

TEST(LeaseLog, RecordsVisibleToScanner) {
  const std::string dir = tmp_dir("visible");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  LeaseLog log{LeaseScheduler::lease_path(dir, "w0"), manifest};
  log.claim(2);
  log.renew(2);
  log.claim(1);
  log.complete(2);

  LeaseDirScanner scanner{dir, "other.lease", manifest};
  scanner.refresh(/*idle=*/false);
  ASSERT_TRUE(scanner.workers().contains("w0.lease"));
  const WorkerLeaseState& w0 = scanner.workers().at("w0.lease");
  EXPECT_TRUE(w0.manifest_checked);
  EXPECT_EQ(w0.claimed, (std::set<std::uint64_t>{1}));
  EXPECT_EQ(w0.completed, (std::set<std::uint64_t>{2}));
  EXPECT_TRUE(scanner.completed_elsewhere(2));
  EXPECT_FALSE(scanner.completed_elsewhere(1));
}

TEST(LeaseLog, IncrementalScanOnlyReadsNewRecords) {
  const std::string dir = tmp_dir("incremental");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  LeaseLog log{LeaseScheduler::lease_path(dir, "w0"), manifest};
  log.claim(0);

  LeaseDirScanner scanner{dir, "me.lease", manifest};
  scanner.refresh(false);
  const std::uint64_t frames_then = scanner.workers().at("w0.lease").frames;
  const std::uint64_t bytes_then = scanner.workers().at("w0.lease").valid_bytes;
  EXPECT_GT(frames_then, 0u);

  // No growth: idle refreshes age the worker; busy refreshes do not.
  scanner.refresh(/*idle=*/false);
  EXPECT_EQ(scanner.workers().at("w0.lease").stale_scans, 0u);
  scanner.refresh(/*idle=*/true);
  scanner.refresh(/*idle=*/true);
  EXPECT_EQ(scanner.workers().at("w0.lease").stale_scans, 2u);

  // Growth resets staleness and only the delta is parsed.
  log.complete(0);
  scanner.refresh(/*idle=*/true);
  const WorkerLeaseState& w0 = scanner.workers().at("w0.lease");
  EXPECT_EQ(w0.stale_scans, 0u);
  EXPECT_EQ(w0.frames, frames_then + 1);
  EXPECT_GT(w0.valid_bytes, bytes_then);
  EXPECT_TRUE(w0.completed.contains(0));
}

TEST(LeaseLog, TornTailIsDroppedOnReopenAndByScanner) {
  const std::string dir = tmp_dir("torntail");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);
  const std::string path = LeaseScheduler::lease_path(dir, "w0");

  {
    LeaseLog log{path, manifest};
    log.claim(0);
    log.complete(0);
    log.claim(1);
  }
  // Tear mid-frame: the claim of cell 1 loses its trailing bytes.
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 2);

  // The scanner never sees the torn claim...
  LeaseDirScanner scanner{dir, "me.lease", manifest};
  scanner.refresh(false);
  EXPECT_EQ(scanner.workers().at("w0.lease").claimed,
            (std::set<std::uint64_t>{}));
  EXPECT_TRUE(scanner.workers().at("w0.lease").completed.contains(0));

  // ...and a reopened log (worker restart) recovers cleanly: completions
  // survive, the torn tail is gone, and appends keep working.
  LeaseLog reopened{path, manifest};
  EXPECT_TRUE(reopened.completed().contains(0));
  reopened.claim(3);
  scanner.refresh(false);
  EXPECT_TRUE(scanner.workers().at("w0.lease").claimed.contains(3));
}

TEST(LeaseLog, ResetVoidsPreviousLifeClaims) {
  const std::string dir = tmp_dir("reset");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);
  const std::string path = LeaseScheduler::lease_path(dir, "w0");

  {
    LeaseLog log{path, manifest};
    log.claim(0);
    log.claim(1);
    log.complete(1);
  }  // "crash" with cell 0 still leased

  LeaseDirScanner scanner{dir, "me.lease", manifest};
  scanner.refresh(false);
  EXPECT_TRUE(scanner.workers().at("w0.lease").claimed.contains(0));

  // Restart appends a reset: peers drop the dead life's claims without
  // waiting out the expiry scans; completions stand.
  LeaseLog restarted{path, manifest};
  scanner.refresh(false);
  const WorkerLeaseState& w0 = scanner.workers().at("w0.lease");
  EXPECT_EQ(w0.claimed, (std::set<std::uint64_t>{}));
  EXPECT_TRUE(w0.completed.contains(1));
}

TEST(LeaseLog, EmptyDebrisFilesAreTreatedAsFresh) {
  // SIGKILL between file creation and the magic write leaves a
  // zero-byte file; the owner must start fresh on restart, not throw
  // bad-magic forever (which would brick the worker id).
  const std::string dir = tmp_dir("debris");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  const std::string lease = LeaseScheduler::lease_path(dir, "w0");
  const std::string store = LeaseScheduler::store_path(dir, "w0");
  { std::ofstream f{lease, std::ios::binary}; }
  { std::ofstream f{store, std::ios::binary}; }

  LeaseLog log{lease, manifest};
  log.claim(1);
  CampaignStore st{store, manifest, CampaignStore::Mode::kCreateOrResume};
  EXPECT_EQ(st.completed_count(), 0u);

  LeaseDirScanner scanner{dir, "me.lease", manifest};
  scanner.refresh(false);
  EXPECT_TRUE(scanner.workers().at("w0.lease").claimed.contains(1));

  // Explicit kResume still refuses the debris with a clear error.
  std::filesystem::remove(store);
  { std::ofstream f{store, std::ios::binary}; }
  EXPECT_THROW((CampaignStore{store, manifest, CampaignStore::Mode::kResume}),
               std::runtime_error);
}

TEST(LeaseLog, WrongSweepAndForeignFilesRejected) {
  const std::string dir = tmp_dir("foreign");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);
  { LeaseLog log{LeaseScheduler::lease_path(dir, "w0"), manifest}; }

  // Reopening with a different sweep identity is refused.
  GridBuilder other = small_grid();
  other.attack_delays_s({0.0, 6.0});
  EXPECT_THROW(
      (LeaseLog{LeaseScheduler::lease_path(dir, "w0"), manifest_for(other)}),
      std::runtime_error);

  // A scanner meeting a peer from a different sweep throws too.
  LeaseDirScanner scanner{dir, "me.lease", manifest_for(other)};
  EXPECT_THROW(scanner.refresh(false), std::runtime_error);

  // A campaign store masquerading as a lease log is not a lease log.
  CampaignStore store{(std::filesystem::path{dir} / "fake.lease").string(),
                      manifest, CampaignStore::Mode::kCreate};
  LeaseDirScanner scan2{dir, "w0.lease", manifest};
  EXPECT_THROW(scan2.refresh(false), std::runtime_error);
}

TEST(LeaseScheduler, SingleWorkerDrainsWholeGrid) {
  const std::string dir = tmp_dir("single");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  LeaseScheduler scheduler{dir, "w0", grid.build(), manifest, nullptr,
                           fast_expiry()};
  EXPECT_EQ(scheduler.planned(), 4u);

  std::set<std::uint64_t> seen;
  std::set<std::size_t> slots;
  for (int i = 0; i < 4; ++i) {
    std::optional<ClaimedCell> claim = scheduler.acquire();
    ASSERT_TRUE(claim.has_value());
    EXPECT_TRUE(seen.insert(claim->cell.index).second) << "cell twice";
    EXPECT_TRUE(slots.insert(claim->slot).second) << "slot twice";
    CellStats stats;
    stats.index = claim->cell.index;
    bool persisted = false;
    EXPECT_TRUE(scheduler.commit(*claim, stats, [&] { persisted = true; }));
    EXPECT_TRUE(persisted);
  }
  EXPECT_EQ(slots, (std::set<std::size_t>{0, 1, 2, 3}));
  EXPECT_FALSE(scheduler.acquire().has_value());  // drained
  EXPECT_EQ(scheduler.telemetry().claims, 4u);
  EXPECT_EQ(scheduler.telemetry().steals, 0u);
}

TEST(LeaseScheduler, PeersClaimDisjointCellsAndSeeCompletions) {
  const std::string dir = tmp_dir("disjoint");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  LeaseScheduler a{dir, "wa", grid.build(), manifest, nullptr, fast_expiry()};
  LeaseScheduler b{dir, "wb", grid.build(), manifest, nullptr, fast_expiry()};

  // Alternate claims; the live peer's leases are never handed out twice.
  std::set<std::uint64_t> seen;
  std::vector<std::pair<LeaseScheduler*, ClaimedCell>> claims;
  for (int i = 0; i < 4; ++i) {
    LeaseScheduler* s = (i % 2 == 0) ? &a : &b;
    std::optional<ClaimedCell> claim = s->acquire();
    ASSERT_TRUE(claim.has_value());
    EXPECT_TRUE(seen.insert(claim->cell.index).second)
        << "two workers claimed cell " << claim->cell.index;
    claims.push_back({s, *claim});
  }
  for (auto& [s, claim] : claims) {
    CellStats stats;
    stats.index = claim.cell.index;
    EXPECT_TRUE(s->commit(claim, stats, {}));
  }
  // Both drain: each sees the other's completions.
  EXPECT_FALSE(a.acquire().has_value());
  EXPECT_FALSE(b.acquire().has_value());
}

TEST(LeaseScheduler, ExpiredLeaseIsStolenAndStaleCompletionIgnored) {
  // The full reclamation story on a 1-cell grid: A claims the only cell
  // and goes silent (SIGKILL stand-in); B waits out the expiry scans,
  // steals, completes. A then "resurrects" and tries to commit — which
  // must be refused, with A's persist callback never invoked.
  const std::string dir = tmp_dir("steal");
  GridBuilder grid{small_base()};  // 1x1x1x1 = single cell
  const StoreManifest manifest = manifest_for(grid);

  LeaseScheduler a{dir, "wa", grid.build(), manifest, nullptr, fast_expiry()};
  std::optional<ClaimedCell> a_claim = a.acquire();
  ASSERT_TRUE(a_claim.has_value());
  // A stops appending here: from B's view its lease goes stale.

  LeaseScheduler b{dir, "wb", grid.build(), manifest, nullptr, fast_expiry()};
  std::optional<ClaimedCell> b_claim = b.acquire();  // blocks ~1 idle round
  ASSERT_TRUE(b_claim.has_value());
  EXPECT_EQ(b_claim->cell.index, a_claim->cell.index);
  EXPECT_EQ(b.telemetry().steals, 1u);

  CellStats stats;
  stats.index = b_claim->cell.index;
  bool b_persisted = false;
  EXPECT_TRUE(b.commit(*b_claim, stats, [&] { b_persisted = true; }));
  EXPECT_TRUE(b_persisted);

  // A resurrects: its completion lost the race and must not persist.
  bool a_persisted = false;
  EXPECT_FALSE(a.commit(*a_claim, stats, [&] { a_persisted = true; }));
  EXPECT_FALSE(a_persisted);
  EXPECT_EQ(a.telemetry().forfeits, 1u);

  EXPECT_FALSE(a.acquire().has_value());
  EXPECT_FALSE(b.acquire().has_value());
}

TEST(LeaseScheduler, VanishedPeerLogStillExpires) {
  // A peer's lease file deleted out from under the sweep (operator
  // cleanup, tmpwatch) can never grow again; its frozen claims must age
  // to expiry like any silent peer's, not block the grid forever.
  const std::string dir = tmp_dir("vanished");
  GridBuilder grid{small_base()};  // single cell
  const StoreManifest manifest = manifest_for(grid);

  {
    LeaseLog a{LeaseScheduler::lease_path(dir, "wa"), manifest};
    a.claim(0);
  }
  LeaseScheduler b{dir, "wb", grid.build(), manifest, nullptr, fast_expiry()};
  // B has seen A's claim; now the file disappears with the claim open.
  std::filesystem::remove(LeaseScheduler::lease_path(dir, "wa"));

  std::optional<ClaimedCell> claim = b.acquire();
  ASSERT_TRUE(claim.has_value());
  EXPECT_EQ(claim->cell.index, 0u);
  EXPECT_EQ(b.telemetry().steals, 1u);
}

TEST(LeaseScheduler, LiveLeaseIsNotStolenWhileRenewed) {
  const std::string dir = tmp_dir("renewed");
  GridBuilder grid{small_base()};  // single cell
  const StoreManifest manifest = manifest_for(grid);

  LeaseScheduler a{dir, "wa", grid.build(), manifest, nullptr, fast_expiry()};
  std::optional<ClaimedCell> a_claim = a.acquire();
  ASSERT_TRUE(a_claim.has_value());

  // B polls while A keeps renewing: with A's log growing between B's
  // scans the lease never expires, so B must still be waiting when A
  // finally completes.
  // Wide expiry margin so scheduler jitter cannot fake a death: the
  // steal would need ~200 consecutive silent idle scans while the
  // renewer appends every 200us.
  LeaseSchedulerOptions patient = fast_expiry();
  patient.expiry_scans = 200;
  LeaseScheduler b{dir, "wb", grid.build(), manifest, nullptr, patient};
  std::thread renewer{[&] {
    for (int i = 0; i < 50; ++i) {
      a.renew(*a_claim);
      std::this_thread::sleep_for(std::chrono::microseconds{200});
    }
    CellStats stats;
    stats.index = a_claim->cell.index;
    ASSERT_TRUE(a.commit(*a_claim, stats, {}));
  }};
  std::optional<ClaimedCell> b_claim = b.acquire();
  renewer.join();
  EXPECT_FALSE(b_claim.has_value());  // grid completed by A, nothing to do
  EXPECT_EQ(b.telemetry().steals, 0u);
}

TEST(LeaseScheduler, RestartResumesOwnStoreAndRepairsLog) {
  const std::string dir = tmp_dir("restart");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);
  const std::string store_path = LeaseScheduler::store_path(dir, "w0");

  // First life: completes 2 of 4 cells through a real store, then the
  // lease log "loses" the second completion (simulating a kill between
  // the store flush and the lease append — tear the last lease record).
  {
    CampaignStore store{store_path, manifest, CampaignStore::Mode::kCreate};
    LeaseScheduler s{dir, "w0", grid.build(), manifest, &store, fast_expiry()};
    for (int i = 0; i < 2; ++i) {
      std::optional<ClaimedCell> claim = s.acquire();
      ASSERT_TRUE(claim.has_value());
      CellStats stats = CampaignRunner::score_cell(
          claim->cell, manifest.trials_per_cell, manifest.trial_salt);
      ASSERT_TRUE(s.commit(*claim, stats, [&] { store.complete_cell(stats); }));
    }
  }
  const std::string lease = LeaseScheduler::lease_path(dir, "w0");
  std::filesystem::resize_file(lease, std::filesystem::file_size(lease) - 3);

  // Second life: the store still knows both completions; the scheduler
  // repairs the missing lease record and only plans the remaining cells.
  CampaignStore store{store_path, manifest, CampaignStore::Mode::kResume};
  EXPECT_EQ(store.completed_count(), 2u);
  LeaseScheduler s{dir, "w0", grid.build(), manifest, &store, fast_expiry()};
  EXPECT_EQ(s.planned(), 2u);

  const std::vector<std::uint64_t> done_list = store.completed_cells();
  const std::set<std::uint64_t> done(done_list.begin(), done_list.end());
  for (int i = 0; i < 2; ++i) {
    std::optional<ClaimedCell> claim = s.acquire();
    ASSERT_TRUE(claim.has_value());
    EXPECT_FALSE(done.contains(claim->cell.index)) << "re-ran a done cell";
    CellStats stats = CampaignRunner::score_cell(
        claim->cell, manifest.trials_per_cell, manifest.trial_salt);
    ASSERT_TRUE(s.commit(*claim, stats, [&] { store.complete_cell(stats); }));
  }
  EXPECT_FALSE(s.acquire().has_value());
  EXPECT_EQ(store.completed_count(), 4u);

  // And the repaired log satisfies a fresh peer immediately.
  LeaseScheduler peer{dir, "w1", grid.build(), manifest, nullptr,
                      fast_expiry()};
  EXPECT_EQ(peer.planned(), 0u);
  EXPECT_FALSE(peer.acquire().has_value());
}

TEST(LeaseScheduler, AbortUnblocksIdleWait) {
  const std::string dir = tmp_dir("abort");
  GridBuilder grid{small_base()};  // single cell
  const StoreManifest manifest = manifest_for(grid);

  LeaseScheduler a{dir, "wa", grid.build(), manifest, nullptr, fast_expiry()};
  ASSERT_TRUE(a.acquire().has_value());  // hold the only cell

  LeaseSchedulerOptions patient;
  patient.expiry_scans = 1000000;  // B would wait (almost) forever
  patient.idle_backoff = std::chrono::milliseconds{50};
  LeaseScheduler b{dir, "wb", grid.build(), manifest, nullptr, patient};
  std::thread aborter{[&] {
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
    b.abort();
  }};
  EXPECT_FALSE(b.acquire().has_value());
  aborter.join();
}

TEST(LeaseScheduler, RejectsBadWorkerIdsAndMismatchedStore) {
  const std::string dir = tmp_dir("badid");
  const GridBuilder grid = small_grid();
  const StoreManifest manifest = manifest_for(grid);

  EXPECT_FALSE(LeaseScheduler::valid_worker_id(""));
  EXPECT_FALSE(LeaseScheduler::valid_worker_id("a/b"));
  EXPECT_FALSE(LeaseScheduler::valid_worker_id("a b"));
  EXPECT_TRUE(LeaseScheduler::valid_worker_id("node-3_gpu0"));
  EXPECT_THROW((LeaseScheduler{dir, "a/b", grid.build(), manifest}),
               std::invalid_argument);

  // A store pinned to a different sweep cannot seed the scheduler.
  GridBuilder other = small_grid();
  other.attack_delays_s({0.0, 7.0});
  CampaignStore store{LeaseScheduler::store_path(dir, "w0"),
                      manifest_for(other), CampaignStore::Mode::kCreate};
  EXPECT_THROW(
      (LeaseScheduler{dir, "w0", grid.build(), manifest, &store}),
      std::invalid_argument);
}

}  // namespace
}  // namespace msa::persist
