// Integration tests for the work-stealing sweep: CampaignRunner pulling
// from persist::LeaseScheduler. The acceptance property is the same one
// every other campaign path pins: the merged multi-worker report is
// byte-identical to the single-process, single-thread run — including
// when a worker dies mid-sweep and its leases are reclaimed.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "campaign/cell_source.h"
#include "campaign/grid.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "persist/campaign_store.h"
#include "persist/lease_log.h"

namespace msa::campaign {
namespace {

using persist::CampaignStore;
using persist::LeaseScheduler;
using persist::LeaseSchedulerOptions;
using persist::StoreManifest;

std::string tmp_dir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "msa_lease_sweep" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0, 512.0 * 1024});
  return grid;
}

CampaignOptions make_options(unsigned threads, unsigned trials = 2) {
  CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = trials;
  return options;
}

StoreManifest manifest_for(const GridBuilder& grid,
                           const CampaignOptions& options) {
  StoreManifest m;
  m.grid_fingerprint = grid.fingerprint();
  m.grid_cells = grid.full_size();
  m.trials_per_cell = options.trials_per_cell;
  m.trial_salt = options.trial_salt;
  return m;
}

LeaseSchedulerOptions fast_expiry() {
  LeaseSchedulerOptions options;
  options.expiry_scans = 2;
  options.idle_backoff = std::chrono::milliseconds{1};
  return options;
}

/// One in-process "worker": its own runner, store and scheduler over the
/// shared directory — the same wiring campaign_sweep --workers-dir does,
/// minus the process boundary.
void run_worker(const std::string& dir, const std::string& id,
                const GridBuilder& grid, const CampaignOptions& options,
                const LeaseSchedulerOptions& lease_options) {
  const StoreManifest manifest = manifest_for(grid, options);
  CampaignRunner runner{options};
  CampaignStore store{LeaseScheduler::store_path(dir, id), manifest,
                      CampaignStore::Mode::kCreateOrResume};
  LeaseScheduler scheduler{dir, id, grid.build(), manifest, &store,
                           lease_options};
  (void)runner.run(scheduler, store);
}

std::vector<std::string> stores_in(const std::string& dir) {
  std::vector<std::string> out;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".store") out.push_back(entry.path().string());
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LeaseSweep, StaticSourceMatchesVectorOverload) {
  // The refactor's no-regression pin: run(cells) and run(StaticCellSource)
  // are the same dispatch, and the CellSource entry point returns cells
  // sorted by global index.
  const GridBuilder grid = small_grid();
  CampaignRunner runner{make_options(4)};
  const SweepReport direct = runner.run(grid);

  const std::vector<CampaignCell> cells = grid.build();
  StaticCellSource source{cells};
  const SweepReport via_source = runner.run(source);
  EXPECT_EQ(via_source.to_csv(), direct.to_csv());
  EXPECT_EQ(via_source.to_json(), direct.to_json());
}

TEST(LeaseSweep, ThreeWorkersMergeByteIdenticalToSingleProcess) {
  const GridBuilder grid = small_grid();
  CampaignRunner single{make_options(1)};
  const SweepReport golden = single.run(grid);

  const std::string dir = tmp_dir("three");
  {
    std::vector<std::thread> workers;
    for (const char* id : {"w0", "w1", "w2"}) {
      workers.emplace_back([&, id] {
        run_worker(dir, id, grid, make_options(2), fast_expiry());
      });
    }
    for (std::thread& t : workers) t.join();
  }

  const SweepReport merged = persist::merge_worker_stores(stores_in(dir));
  EXPECT_EQ(merged.to_csv(), golden.to_csv());
  EXPECT_EQ(merged.to_json(), golden.to_json());
}

TEST(LeaseSweep, DeadWorkerLeasesAreReclaimedBySurvivor) {
  const GridBuilder grid = small_grid();
  CampaignRunner single{make_options(4)};
  const SweepReport golden = single.run(grid);

  const std::string dir = tmp_dir("reclaim");
  const CampaignOptions options = make_options(2);
  const StoreManifest manifest = manifest_for(grid, options);

  // "Kill" a worker mid-sweep: it claims two cells, scores neither, and
  // never appends again (the in-process stand-in for SIGKILL).
  auto casualty = std::make_unique<LeaseScheduler>(
      dir, "dead", grid.build(), manifest, nullptr, fast_expiry());
  ASSERT_TRUE(casualty->acquire().has_value());
  ASSERT_TRUE(casualty->acquire().has_value());

  // A survivor must finish the WHOLE grid, stealing the dead leases.
  run_worker(dir, "live", grid, options, fast_expiry());
  casualty.reset();

  // The dead worker's store never materialized (it opened no store); the
  // survivor's store alone covers the grid.
  const SweepReport merged = persist::merge_worker_stores(stores_in(dir));
  EXPECT_EQ(merged.to_csv(), golden.to_csv());
}

TEST(LeaseSweep, RestartedWorkerResumesAndFinishes) {
  const GridBuilder grid = small_grid();
  CampaignRunner single{make_options(3)};
  const SweepReport golden = single.run(grid);

  const std::string dir = tmp_dir("restart");
  const CampaignOptions options = make_options(2);
  const StoreManifest manifest = manifest_for(grid, options);

  // First life: complete exactly 3 cells through the real store, then
  // stop with the rest unclaimed.
  {
    CampaignStore store{LeaseScheduler::store_path(dir, "w0"), manifest,
                        CampaignStore::Mode::kCreate};
    LeaseScheduler scheduler{dir, "w0", grid.build(), manifest, &store,
                             fast_expiry()};
    for (int i = 0; i < 3; ++i) {
      auto claim = scheduler.acquire();
      ASSERT_TRUE(claim.has_value());
      CellStats stats = CampaignRunner::score_cell(
          claim->cell, options.trials_per_cell, options.trial_salt);
      ASSERT_TRUE(
          scheduler.commit(*claim, stats, [&] { store.complete_cell(stats); }));
    }
  }

  // Second life, same id: resumes its own store, plans only the rest.
  run_worker(dir, "w0", grid, options, fast_expiry());
  const SweepReport merged = persist::merge_worker_stores(stores_in(dir));
  EXPECT_EQ(merged.to_csv(), golden.to_csv());
  EXPECT_EQ(merged.to_json(), golden.to_json());
}

TEST(LeaseSweep, ProgressHookSeesMonotonicDoneOverPlanned) {
  const GridBuilder grid = small_grid();
  const std::string dir = tmp_dir("progress");
  // One thread: with several workers, hook invocations may legally
  // arrive out of order (documented), which would make this flaky.
  CampaignOptions options = make_options(1);
  std::size_t last_done = 0;
  std::size_t total_seen = 0;
  options.on_cell_done = [&](std::size_t done, std::size_t total) {
    EXPECT_GT(done, last_done);
    last_done = done;
    total_seen = total;
  };
  const StoreManifest manifest = manifest_for(grid, options);
  CampaignRunner runner{options};
  CampaignStore store{LeaseScheduler::store_path(dir, "w0"), manifest,
                      CampaignStore::Mode::kCreate};
  LeaseScheduler scheduler{dir, "w0", grid.build(), manifest, &store,
                           fast_expiry()};
  const SweepReport report = runner.run(scheduler, store);
  EXPECT_EQ(total_seen, 8u);   // planned == whole grid (no peers)
  EXPECT_EQ(last_done, 8u);    // every cell reported
  EXPECT_EQ(report.cells.size(), 8u);
}

}  // namespace
}  // namespace msa::campaign
