#include "util/log.h"

#include <gtest/gtest.h>

#include <regex>
#include <string>
#include <vector>

namespace msa::util {
namespace {

/// Captures log lines for assertions and restores global state on exit.
struct LogCapture {
  std::vector<std::pair<LogLevel, std::string>> lines;
  LogLevel saved_level = Log::level();

  LogCapture() {
    Log::set_sink([this](LogLevel level, std::string_view message) {
      lines.emplace_back(level, std::string{message});
    });
  }
  ~LogCapture() {
    Log::set_sink(nullptr);
    Log::set_level(saved_level);
  }
};

TEST(Log, LevelFiltering) {
  LogCapture cap;
  Log::set_level(LogLevel::kWarn);
  Log::debug("d");
  Log::info("i");
  Log::warn("w");
  Log::error("e");
  ASSERT_EQ(cap.lines.size(), 2u);
  EXPECT_EQ(cap.lines[0].first, LogLevel::kWarn);
  EXPECT_EQ(cap.lines[1].second, "e");
}

TEST(Log, OffSilencesEverything) {
  LogCapture cap;
  Log::set_level(LogLevel::kOff);
  Log::error("should not appear");
  EXPECT_TRUE(cap.lines.empty());
}

TEST(Log, DebugLevelPassesAll) {
  LogCapture cap;
  Log::set_level(LogLevel::kDebug);
  Log::debug("d");
  Log::info("i");
  EXPECT_EQ(cap.lines.size(), 2u);
}

TEST(Log, ScopedLevelRestores) {
  LogCapture cap;
  Log::set_level(LogLevel::kError);
  {
    ScopedLogLevel scoped{LogLevel::kDebug};
    EXPECT_EQ(Log::level(), LogLevel::kDebug);
    Log::info("inside");
  }
  EXPECT_EQ(Log::level(), LogLevel::kError);
  Log::info("outside");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0].second, "inside");
}

TEST(Log, LevelNames) {
  EXPECT_EQ(to_string(LogLevel::kDebug), "debug");
  EXPECT_EQ(to_string(LogLevel::kInfo), "info");
  EXPECT_EQ(to_string(LogLevel::kWarn), "warn");
  EXPECT_EQ(to_string(LogLevel::kError), "error");
  EXPECT_EQ(to_string(LogLevel::kOff), "off");
}

TEST(Log, SinkReceivesExactMessage) {
  LogCapture cap;
  Log::set_level(LogLevel::kInfo);
  Log::info("spawn pid=1391 cmd=./resnet50_pt");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0].second, "spawn pid=1391 cmd=./resnet50_pt");
}

TEST(Log, DefaultSinkPrefixesElapsedTimeAndThread) {
  // The default stderr sink carries "[<seconds>s t<ordinal>] [level]";
  // custom sinks (everything LogCapture sees) never do. Capture stderr
  // around a default-sink write to pin the prefix shape.
  const bool saved_plain = Log::plain();
  Log::set_sink(nullptr);
  Log::set_plain(false);
  {
    ScopedLogLevel scoped{LogLevel::kInfo};
    testing::internal::CaptureStderr();
    Log::info("prefixed line");
    const std::string out = testing::internal::GetCapturedStderr();
    EXPECT_TRUE(std::regex_match(
        out, std::regex{R"(\[ *\d+\.\d{3}s t\d{2,}\] \[info\] prefixed line\n)"}))
        << out;
  }
  Log::set_plain(saved_plain);
}

TEST(Log, SetPlainRestoresBarePrefix) {
  const bool saved_plain = Log::plain();
  Log::set_sink(nullptr);
  Log::set_plain();
  EXPECT_TRUE(Log::plain());
  {
    ScopedLogLevel scoped{LogLevel::kInfo};
    testing::internal::CaptureStderr();
    Log::info("plain line");
    EXPECT_EQ(testing::internal::GetCapturedStderr(), "[info] plain line\n");
  }
  Log::set_plain(saved_plain);
}

TEST(Log, CustomSinkIsNeverPrefixed) {
  LogCapture cap;
  Log::set_level(LogLevel::kInfo);
  Log::set_plain(false);
  Log::info("raw");
  ASSERT_EQ(cap.lines.size(), 1u);
  EXPECT_EQ(cap.lines[0].second, "raw");
}

}  // namespace
}  // namespace msa::util
