#include "dbg/memory_firewall.h"

#include <gtest/gtest.h>

#include "attack/scenario.h"
#include "dbg/debugger.h"

namespace msa::dbg {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  os::Pid victim = 0;
  dram::PhysAddr victim_pa = 0;

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    victim = sys.spawn(1000, {"app"}, "pts/1");
    const mem::VirtAddr heap = sys.sbrk(victim, mem::kPageSize);
    sys.write_virt32(victim, heap, 0x5EC4E7u);
    victim_pa = *sys.process(victim).page_table().translate(heap);
  }
};

TEST(MemoryFirewall, DisabledModeAllowsEverything) {
  Fixture f;
  MemoryFirewall fw{f.sys, FirewallMode::kDisabled};
  EXPECT_TRUE(fw.allows(1001, f.victim_pa));
  EXPECT_EQ(fw.stats().denials, 0u);
}

TEST(MemoryFirewall, LiveFrameDeniedToOtherUser) {
  Fixture f;
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  EXPECT_FALSE(fw.allows(1001, f.victim_pa));
  EXPECT_TRUE(fw.allows(1000, f.victim_pa));  // owner may self-debug
  EXPECT_TRUE(fw.allows(0, f.victim_pa));     // root bypass
  EXPECT_EQ(fw.stats().denials, 1u);
}

TEST(MemoryFirewall, ResidueDeniedAfterTermination) {
  // The surgical fix: the freed frame's residue belongs to the victim.
  Fixture f;
  f.sys.terminate(f.victim);
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  EXPECT_FALSE(fw.allows(1001, f.victim_pa));
  EXPECT_TRUE(fw.allows(1000, f.victim_pa));  // producer may read back
}

TEST(MemoryFirewall, LiveOnlyModeLeavesResidueOpen) {
  // The half measure: freed frames are world-readable — attack unaffected.
  Fixture f;
  f.sys.terminate(f.victim);
  MemoryFirewall fw{f.sys, FirewallMode::kLiveOwnerOnly};
  EXPECT_TRUE(fw.allows(1001, f.victim_pa));
}

TEST(MemoryFirewall, NeverUsedFramesOpen) {
  Fixture f;
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  // A frame beyond anything allocated: never used, nothing to protect.
  const dram::PhysAddr unused = mem::PageFrameAllocator::frame_to_phys(
      f.sys.config().pool_first_pfn + f.sys.config().pool_frames - 1);
  EXPECT_TRUE(fw.allows(1001, unused));
}

TEST(MemoryFirewall, OutsidePoolAlwaysAllowed) {
  Fixture f;
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  EXPECT_TRUE(fw.allows(1001, 0x0));  // below the pool (carveout)
}

TEST(MemoryFirewall, DebuggerIntegrationThrowsOnDenial) {
  Fixture f;
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  SystemDebugger dbg{f.sys, 1001};
  dbg.set_firewall(&fw);
  f.sys.terminate(f.victim);
  EXPECT_THROW((void)dbg.devmem32(f.victim_pa), DebuggerAccessDenied);
  EXPECT_GT(dbg.stats().denials, 0u);
  // Clearing the firewall restores the vulnerable behaviour.
  dbg.set_firewall(nullptr);
  EXPECT_NO_THROW((void)dbg.devmem32(f.victim_pa));
}

TEST(MemoryFirewall, EndToEndScenarioBlocked) {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  cfg.firewall = FirewallMode::kOwnerOrResidue;
  const attack::ScenarioResult r = attack::run_scenario(cfg);
  EXPECT_TRUE(r.denied);
  EXPECT_FALSE(r.model_identified_correctly);
}

TEST(MemoryFirewall, EndToEndWeakModeStillLeaks) {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  cfg.firewall = FirewallMode::kLiveOwnerOnly;
  const attack::ScenarioResult r = attack::run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  EXPECT_TRUE(r.full_success());  // half measures don't help
}

TEST(MemoryFirewall, ReuseTransfersProtectionToNewOwner) {
  Fixture f;
  f.sys.terminate(f.victim);
  // A new process of a different user reuses the frame: it becomes the
  // live owner and the old victim loses access.
  const os::Pid next = f.sys.spawn(1001, {"app2"}, "pts/0");
  (void)f.sys.sbrk(next, mem::kPageSize);  // LIFO reuse of the same frame
  MemoryFirewall fw{f.sys, FirewallMode::kOwnerOrResidue};
  EXPECT_TRUE(fw.allows(1001, f.victim_pa));
  EXPECT_FALSE(fw.allows(1000, f.victim_pa));
}

}  // namespace
}  // namespace msa::dbg
