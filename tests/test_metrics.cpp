// Metrics-registry tests: find-or-create identity, kind-mismatch
// rejection, histogram percentile edge cases (empty, single-valued,
// out-of-range p), and the three render formats.
#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace msa::obs {
namespace {

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  Counter& a = counter("test.registry.counter");
  a.reset();
  Counter& b = counter("test.registry.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);

  Gauge& g = gauge("test.registry.gauge");
  g.set(-7);
  EXPECT_EQ(gauge("test.registry.gauge").value(), -7);
}

TEST(MetricsRegistry, KindMismatchThrows) {
  (void)counter("test.registry.kind_clash");
  EXPECT_THROW((void)gauge("test.registry.kind_clash"), std::logic_error);
  EXPECT_THROW((void)histogram("test.registry.kind_clash"), std::logic_error);
}

TEST(MetricsRegistry, CountersAreThreadSafe) {
  Counter& c = counter("test.registry.concurrent");
  c.reset();
  constexpr unsigned kThreads = 8;
  constexpr unsigned kAdds = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (unsigned i = 0; i < kAdds; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), std::uint64_t{kThreads} * kAdds);
}

TEST(Histogram, EmptyHistogramIsAllZero) {
  Histogram& h = histogram("test.hist.empty");
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(h.percentile(99.0), 0.0);
}

TEST(Histogram, SingleValueReportsItselfAtEveryPercentile) {
  Histogram& h = histogram("test.hist.single");
  h.reset();
  h.record(1234);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.sum(), 1234u);
  EXPECT_EQ(h.min(), 1234u);
  EXPECT_EQ(h.max(), 1234u);
  // Bucket interpolation would smear a lone sample across its power-of-
  // two bucket; the [min, max] clamp must pin every percentile to it.
  for (const double p : {0.0, 1.0, 50.0, 90.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile(p), 1234.0) << "p=" << p;
  }
}

TEST(Histogram, OutOfRangePercentilesClampToMinAndMax) {
  Histogram& h = histogram("test.hist.range");
  h.reset();
  h.record(10);
  h.record(1000);
  EXPECT_DOUBLE_EQ(h.percentile(-5.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(100.0), 1000.0);
  EXPECT_DOUBLE_EQ(h.percentile(250.0), 1000.0);
}

TEST(Histogram, ZeroIsItsOwnBucket) {
  Histogram& h = histogram("test.hist.zero");
  h.reset();
  h.record(0);
  h.record(0);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), 0.0);
}

TEST(Histogram, PercentilesAreMonotoneAndWithinRange) {
  Histogram& h = histogram("test.hist.monotone");
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  double previous = 0.0;
  for (const double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const double v = h.percentile(p);
    EXPECT_GE(v, previous) << "p=" << p;
    EXPECT_GE(v, 1.0);
    EXPECT_LE(v, 1000.0);
    previous = v;
  }
  // The median of 1..1000 lands in bucket [512, 1023]; interpolation
  // should put it in the neighbourhood of 500, not at a bucket edge.
  EXPECT_NEAR(h.percentile(50.0), 500.0, 260.0);
}

TEST(Histogram, MaxValueDoesNotOverflowBuckets) {
  Histogram& h = histogram("test.hist.max64");
  h.reset();
  h.record(UINT64_MAX);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_DOUBLE_EQ(h.percentile(50.0), static_cast<double>(UINT64_MAX));
}

TEST(RenderMetrics, TextAndCsvAndJsonAgreeOnValues) {
  Counter& c = counter("test.render.counter");
  c.reset();
  c.add(42);
  Histogram& h = histogram("test.render.hist");
  h.reset();
  h.record(7);

  const std::string text = render_metrics(MetricsFormat::kText);
  EXPECT_NE(text.find("test.render.counter"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("test.render.hist"), std::string::npos);

  const std::string csv = render_metrics(MetricsFormat::kCsv);
  EXPECT_EQ(csv.find("metric,kind,value,count,min,p50,p90,p99,max,sum"), 0u);
  EXPECT_NE(csv.find("test.render.counter,counter,42"), std::string::npos);

  const std::string json = render_metrics(MetricsFormat::kJson);
  EXPECT_EQ(json.find("{\"metrics\":["), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"metric\":\"test.render.counter\""),
            std::string::npos);
}

TEST(RenderMetrics, RowsAreSortedByName) {
  (void)counter("test.sorted.a");
  (void)counter("test.sorted.b");
  const std::string csv = render_metrics(MetricsFormat::kCsv);
  const auto a = csv.find("test.sorted.a");
  const auto b = csv.find("test.sorted.b");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
}

}  // namespace
}  // namespace msa::obs
