#include "attack/model_recovery.h"

#include <gtest/gtest.h>

#include "attack/address_resolver.h"
#include "vitis/model_zoo.h"
#include "vitis/runtime.h"

namespace msa::attack {
namespace {

attack::ScrapedDump scrape_one_run(const std::string& model_name) {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  const vitis::VictimRun run = runtime.launch(
      1000, model_name, img::make_test_image(64, 64, 3), "pts/1");
  AddressResolver resolver{dbg};
  const ResolvedTarget target = resolver.resolve_heap(run.pid);
  sys.terminate(run.pid);
  MemoryScraper scraper{dbg};
  return scraper.scrape(target);
}

TEST(ModelRecovery, RecoversExecutableCloneFromResidue) {
  const ScrapedDump dump = scrape_one_run("resnet50_pt");
  const auto recovered = recover_model(dump.bytes);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->model.name(), "resnet50_pt");
  EXPECT_GT(recovered->container_bytes, 1000u);

  // The clone is byte-identical, hence functionally identical.
  const vitis::XModel original = vitis::make_zoo_model("resnet50_pt");
  EXPECT_EQ(recovered->model.serialize(), original.serialize());
  EXPECT_DOUBLE_EQ(clone_agreement(original, recovered->model, 16, 7), 1.0);
}

TEST(ModelRecovery, NothingToRecoverFromJunk) {
  std::vector<std::uint8_t> junk(1 << 16, 0x3C);
  EXPECT_FALSE(recover_model(junk).has_value());
}

TEST(ModelRecovery, SkipsDamagedContainer) {
  ScrapedDump dump = scrape_one_run("squeezenet_pt");
  const auto good = recover_model(dump.bytes);
  ASSERT_TRUE(good.has_value());
  dump.bytes[good->container_offset + good->container_bytes / 2] ^= 0xFF;
  EXPECT_FALSE(recover_model(dump.bytes).has_value());
}

TEST(ModelRecovery, CloneAgreementDetectsDifferentModels) {
  const vitis::XModel a = vitis::make_zoo_model("resnet50_pt");
  const vitis::XModel b = vitis::make_zoo_model("squeezenet_pt");
  // Different architectures/weights: agreement well below perfect.
  EXPECT_LT(clone_agreement(a, b, 32, 11), 1.0);
  EXPECT_DOUBLE_EQ(clone_agreement(a, a, 8, 11), 1.0);
}

TEST(ModelRecovery, ZeroProbesGivesZero) {
  const vitis::XModel a = vitis::make_zoo_model("resnet50_pt");
  EXPECT_DOUBLE_EQ(clone_agreement(a, a, 0, 1), 0.0);
}

class RecoverySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(RecoverySweep, EveryZooModelIsStealable) {
  const ScrapedDump dump = scrape_one_run(GetParam());
  const auto recovered = recover_model(dump.bytes);
  ASSERT_TRUE(recovered.has_value()) << GetParam();
  EXPECT_EQ(recovered->model.name(), GetParam());
  const vitis::XModel original = vitis::make_zoo_model(GetParam());
  EXPECT_DOUBLE_EQ(clone_agreement(original, recovered->model, 8, 3), 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllModels, RecoverySweep,
                         ::testing::ValuesIn(vitis::zoo_model_names()));

}  // namespace
}  // namespace msa::attack
