#include "vitis/model_zoo.h"

#include <gtest/gtest.h>

#include <set>

namespace msa::vitis {
namespace {

TEST(ModelZoo, ListsFiveModels) {
  EXPECT_EQ(zoo_model_names().size(), 5u);
  EXPECT_TRUE(zoo_has_model("resnet50_pt"));
  EXPECT_TRUE(zoo_has_model("yolov3_tiny_tf"));
  EXPECT_FALSE(zoo_has_model("bert_large"));
}

TEST(ModelZoo, UnknownModelThrows) {
  EXPECT_THROW(make_zoo_model("not_a_model"), std::invalid_argument);
}

TEST(ModelZoo, WeightsDeterministicPerName) {
  EXPECT_EQ(make_zoo_model("resnet50_pt").serialize(),
            make_zoo_model("resnet50_pt").serialize());
}

TEST(ModelZoo, ModelsAreDistinguishableBySize) {
  // Heap layouts must differ per model (the paper identifies models partly
  // by their memory footprints).
  std::set<std::size_t> sizes;
  for (const auto& name : zoo_model_names()) {
    sizes.insert(make_zoo_model(name).serialize().size());
  }
  EXPECT_EQ(sizes.size(), zoo_model_names().size());
}

TEST(ModelZoo, AuxStringsContainIdentifyingNames) {
  for (const auto& name : zoo_model_names()) {
    const XModel m = make_zoo_model(name);
    bool has_path = false;
    for (const auto& s : m.aux_strings()) {
      if (s.find(name) != std::string::npos) has_path = true;
    }
    EXPECT_TRUE(has_path) << name;
  }
}

TEST(ModelZoo, PtModelsCarryTorchvisionString) {
  const XModel m = make_zoo_model("resnet50_pt");
  bool found = false;
  for (const auto& s : m.aux_strings()) {
    if (s == "torchvision/resnet50") found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModelZoo, TfModelsCarryTensorflowString) {
  const XModel m = make_zoo_model("inception_v1_tf");
  bool found = false;
  for (const auto& s : m.aux_strings()) {
    if (s.find("tensorflow") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(ModelZoo, AllModelsRunInference) {
  const img::Image in = img::make_test_image(64, 64, 5);
  for (const auto& name : zoo_model_names()) {
    const XModel m = make_zoo_model(name);
    const auto probs = m.infer(tensor_from_image(in));
    EXPECT_EQ(probs.size(), m.num_classes()) << name;
    EXPECT_GT(m.num_classes(), 1u) << name;
  }
}

TEST(ModelZoo, DifferentModelsProduceDifferentOutputs) {
  const img::Image in = img::make_test_image(64, 64, 5);
  EXPECT_NE(make_zoo_model("resnet50_pt").infer(tensor_from_image(in)),
            make_zoo_model("squeezenet_pt").infer(tensor_from_image(in)));
}

class ZooSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSweep, SerializeRoundTripEveryModel) {
  const XModel m = make_zoo_model(GetParam());
  const XModel copy = XModel::deserialize(m.serialize());
  EXPECT_EQ(copy.name(), m.name());
  EXPECT_EQ(copy.param_bytes(), m.param_bytes());
  const img::Image in = img::make_test_image(64, 64, 31);
  EXPECT_EQ(copy.infer(tensor_from_image(in)), m.infer(tensor_from_image(in)));
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooSweep,
                         ::testing::Values("resnet50_pt", "squeezenet_pt",
                                           "inception_v1_tf", "mobilenet_v2_tf",
                                           "yolov3_tiny_tf"));

}  // namespace
}  // namespace msa::vitis
