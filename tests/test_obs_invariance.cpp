// The observability non-interference contract: enabling tracing (the
// metrics registry is always on) must not change a single byte of the
// sweep report, at any thread count — the instrumentation observes the
// pipeline, it never participates in it. Also pins the shape of what a
// traced sweep actually records: spans are strictly nested per thread
// (the instrumentation points are all scoped RAII guards), and the
// export is structurally valid Chrome trace-event JSON.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/report.h"
#include "campaign/runner.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace msa::campaign {
namespace {

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 models x 2 delays = 8 cells mixing successes with
/// scrub-defeated scrapes, the same shape the campaign tests pin.
GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"})
      .models({"resnet50_pt", "squeezenet_pt"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0});
  return grid;
}

std::string sweep_csv(unsigned threads, bool traced) {
  if (traced) {
    obs::Trace::enable();
  } else {
    obs::Trace::disable();
  }
  obs::Trace::clear();
  CampaignOptions options;
  options.threads = threads;
  options.trials_per_cell = 2;
  CampaignRunner runner{options};
  const SweepReport report = runner.run(small_grid());
  obs::Trace::disable();
  return report.to_csv();
}

TEST(ObsInvariance, ReportBytesIdenticalWithTracingOnOrOff) {
  const std::string untraced_1 = sweep_csv(1, false);
  const std::string traced_1 = sweep_csv(1, true);
  const std::string untraced_8 = sweep_csv(8, false);
  const std::string traced_8 = sweep_csv(8, true);
  EXPECT_EQ(traced_1, untraced_1);
  EXPECT_EQ(traced_8, untraced_1);
  EXPECT_EQ(untraced_8, untraced_1);
}

TEST(ObsInvariance, TracedSweepSpansAreStrictlyNestedPerThread) {
  obs::Trace::enable();
  obs::Trace::clear();
  CampaignOptions options;
  options.threads = 4;
  options.trials_per_cell = 1;
  CampaignRunner runner{options};
  (void)runner.run(small_grid());
  obs::Trace::disable();

  const std::vector<obs::ThreadTrace> threads = obs::Trace::snapshot();
  ASSERT_FALSE(threads.empty());
  std::size_t total = 0;
  for (const obs::ThreadTrace& t : threads) {
    EXPECT_EQ(t.dropped, 0u);
    total += t.spans.size();
    // RAII guards on one thread can only close LIFO, so any two spans
    // are either disjoint or one contains the other — never partially
    // overlapping. Check every pair (rings are small here).
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
      const auto a0 = t.spans[i].start_ns;
      const auto a1 = a0 + t.spans[i].dur_ns;
      for (std::size_t j = i + 1; j < t.spans.size(); ++j) {
        const auto b0 = t.spans[j].start_ns;
        const auto b1 = b0 + t.spans[j].dur_ns;
        const bool disjoint = a1 <= b0 || b1 <= a0;
        const bool a_in_b = b0 <= a0 && a1 <= b1;
        const bool b_in_a = a0 <= b0 && b1 <= a1;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << t.spans[i].name << " [" << a0 << "," << a1 << ") vs "
            << t.spans[j].name << " [" << b0 << "," << b1 << ")";
      }
    }
  }
  // 8 cells x (acquire + cell + trial) plus per-trial pipeline stages:
  // the sweep must have recorded a meaningful number of spans.
  EXPECT_GE(total, 8u * 3u);
}

TEST(ObsInvariance, TracedSweepExportsParseableChromeJson) {
  obs::Trace::enable();
  obs::Trace::clear();
  CampaignOptions options;
  options.threads = 2;
  options.trials_per_cell = 1;
  CampaignRunner runner{options};
  (void)runner.run(small_grid());
  obs::Trace::disable();

  const std::string json = obs::Trace::chrome_json();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{"), 0u);
  EXPECT_EQ(json.substr(json.size() - 4), "}]}\n");
  // Minimal structural validation: braces and brackets balance, and
  // every event carries the complete-event keys.
  int depth = 0;
  int min_depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    min_depth = std::min(min_depth, depth);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_EQ(min_depth, 0);
  for (const char* key :
       {"\"name\":", "\"cat\":", "\"ph\":\"X\"", "\"ts\":", "\"dur\":",
        "\"pid\":1", "\"tid\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key;
  }
  // The named pipeline stages all appear somewhere in the export.
  for (const char* name : {"\"acquire\"", "\"cell\"", "\"trial\"",
                           "\"profile\"", "\"scrape\"", "\"score\""}) {
    EXPECT_NE(json.find(name), std::string::npos) << name;
  }
}

TEST(ObsInvariance, MetricsCountTheSweep) {
  obs::Counter& cells = obs::counter("campaign.cells");
  obs::Counter& trials = obs::counter("campaign.trials");
  const std::uint64_t cells_before = cells.value();
  const std::uint64_t trials_before = trials.value();
  CampaignOptions options;
  options.threads = 3;
  options.trials_per_cell = 2;
  CampaignRunner runner{options};
  (void)runner.run(small_grid());
  EXPECT_EQ(cells.value() - cells_before, 8u);
  EXPECT_EQ(trials.value() - trials_before, 16u);
}

}  // namespace
}  // namespace msa::campaign
