#include "attack/orchestrator.h"

#include <gtest/gtest.h>

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  ProfileDb profiles;

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    OfflineProfiler profiler{runtime, dbg};
    profiles.add(profiler.profile_model("resnet50_pt", 48, 48, 1001));
  }

  AttackOrchestrator make_orchestrator() {
    return AttackOrchestrator{dbg, SignatureDb::for_zoo(), profiles};
  }
};

TEST(Orchestrator, FullFourStepAttack) {
  Fixture f;
  auto orch = f.make_orchestrator();

  const img::Image input = img::make_test_image(48, 48, 7);
  const vitis::VictimRun run =
      f.runtime.launch(1000, "resnet50_pt", input, "pts/1");

  const auto entry = orch.find_victim("resnet50");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->pid, run.pid);

  const ResolvedTarget target = orch.resolve(entry->pid);
  EXPECT_GT(target.pages_resolved(), 0u);
  EXPECT_FALSE(orch.victim_terminated(entry->pid));

  f.sys.terminate(run.pid);
  EXPECT_TRUE(orch.victim_terminated(entry->pid));

  const AttackReport report = orch.attack_after_termination(target);
  EXPECT_EQ(report.victim_pid, run.pid);
  EXPECT_EQ(report.identified_model, "resnet50_pt");
  EXPECT_GT(report.signature_hits, 0u);
  ASSERT_TRUE(report.deep_match.has_value());
  EXPECT_EQ(report.deep_match->model_name, "resnet50_pt");
  ASSERT_TRUE(report.reconstructed_image.has_value());
  EXPECT_EQ(*report.reconstructed_image, input);
  EXPECT_GT(report.devmem_reads, 0u);
}

TEST(Orchestrator, TranscriptNarratesSteps) {
  Fixture f;
  auto orch = f.make_orchestrator();
  const vitis::VictimRun run = f.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 1), "pts/1");
  const ResolvedTarget target = orch.resolve(run.pid);
  f.sys.terminate(run.pid);
  const AttackReport report = orch.attack_after_termination(target);
  EXPECT_NE(report.transcript.find("[step 2]"), std::string::npos);
  EXPECT_NE(report.transcript.find("[step 3]"), std::string::npos);
  EXPECT_NE(report.transcript.find("[step 4a]"), std::string::npos);
  EXPECT_NE(report.transcript.find("resnet50_pt"), std::string::npos);
}

TEST(Orchestrator, NoProfileMeansNoReconstruction) {
  Fixture f;
  AttackOrchestrator orch{f.dbg, SignatureDb::for_zoo(), ProfileDb{}};
  const vitis::VictimRun run = f.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 2), "pts/1");
  const ResolvedTarget target = orch.resolve(run.pid);
  f.sys.terminate(run.pid);
  const AttackReport report = orch.attack_after_termination(target);
  EXPECT_TRUE(report.model_identified());   // strings still work
  EXPECT_FALSE(report.image_recovered());   // no offset knowledge
}

TEST(Orchestrator, SanitizedResidueYieldsEmptyReport) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  AttackOrchestrator orch{dbg, SignatureDb::for_zoo(), ProfileDb{}};

  const vitis::VictimRun run = runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 3), "pts/1");
  const ResolvedTarget target = orch.resolve(run.pid);
  sys.terminate(run.pid);
  const AttackReport report = orch.attack_after_termination(target);
  EXPECT_FALSE(report.model_identified());
  EXPECT_FALSE(report.deep_match.has_value());
  EXPECT_FALSE(report.image_recovered());
}

TEST(Orchestrator, PhysicalScanAttackRecoversEverything) {
  Fixture f;
  auto orch = f.make_orchestrator();
  const img::Image input = img::make_test_image(48, 48, 4);
  const vitis::VictimRun run =
      f.runtime.launch(1000, "resnet50_pt", input, "pts/1");
  f.sys.terminate(run.pid);

  const dram::PhysAddr pool_base = mem::PageFrameAllocator::frame_to_phys(
      f.sys.config().pool_first_pfn);
  const std::uint64_t len = f.profiles.find("resnet50_pt")->heap_bytes * 2;
  const AttackReport report = orch.attack_physical_scan(pool_base, len);
  EXPECT_EQ(report.identified_model, "resnet50_pt");
  ASSERT_TRUE(report.reconstructed_image.has_value());
  EXPECT_EQ(*report.reconstructed_image, input);
}

TEST(Orchestrator, PhysicalScanOnCleanPoolFindsNothing) {
  Fixture f;  // profiling ran on this board's twin... but Fixture profiles
              // on the same board, so scan the *far* end of the pool.
  auto orch = f.make_orchestrator();
  const dram::PhysAddr far_base = mem::PageFrameAllocator::frame_to_phys(
      f.sys.config().pool_first_pfn + f.sys.config().pool_frames / 2);
  const AttackReport report = orch.attack_physical_scan(far_base, 64 * 1024);
  EXPECT_FALSE(report.model_identified());
  EXPECT_FALSE(report.image_recovered());
}

TEST(Orchestrator, FindVictimMissReturnsNullopt) {
  Fixture f;
  auto orch = f.make_orchestrator();
  EXPECT_FALSE(orch.find_victim("nonexistent_model").has_value());
}

}  // namespace
}  // namespace msa::attack
