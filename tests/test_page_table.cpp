#include "mem/page_table.h"

#include <gtest/gtest.h>

namespace msa::mem {
namespace {

TEST(PageTable, MapLookupUnmap) {
  PageTable pt;
  pt.map(0x100, 0x60000);
  EXPECT_TRUE(pt.is_mapped(0x100));
  EXPECT_EQ(pt.lookup(0x100).value(), 0x60000u);
  EXPECT_EQ(pt.unmap(0x100), 0x60000u);
  EXPECT_FALSE(pt.is_mapped(0x100));
}

TEST(PageTable, DoubleMapThrows) {
  PageTable pt;
  pt.map(0x1, 0x2);
  EXPECT_THROW(pt.map(0x1, 0x3), std::logic_error);
}

TEST(PageTable, UnmapMissingThrows) {
  PageTable pt;
  EXPECT_THROW(pt.unmap(0x1), std::logic_error);
}

TEST(PageTable, LookupMissingIsNullopt) {
  PageTable pt;
  EXPECT_FALSE(pt.lookup(0x42).has_value());
}

TEST(PageTable, TranslateCarriesPageOffset) {
  PageTable pt;
  // VA page 0xaaaaee775 -> PFN 0x61c6d (paper-sized numbers).
  pt.map(0xaaaaee775ULL, 0x61c6dULL);
  const auto pa = pt.translate(0xaaaaee775123ULL);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, 0x61c6d123ULL);
}

TEST(PageTable, TranslateUnmappedIsNullopt) {
  PageTable pt;
  EXPECT_FALSE(pt.translate(0xdead0000).has_value());
}

TEST(PageTable, EntriesOrderedByVpn) {
  PageTable pt;
  pt.map(30, 3);
  pt.map(10, 1);
  pt.map(20, 2);
  std::vector<Vpn> vpns;
  for (const auto& [vpn, pfn] : pt.entries()) vpns.push_back(vpn);
  EXPECT_EQ(vpns, (std::vector<Vpn>{10, 20, 30}));
  EXPECT_EQ(pt.mapped_pages(), 3u);
}

TEST(PageHelpers, VpnAndOffset) {
  EXPECT_EQ(vpn_of(0xaaaaee775000ULL), 0xaaaaee775ULL);
  EXPECT_EQ(vpn_of(0xaaaaee775FFFULL), 0xaaaaee775ULL);
  EXPECT_EQ(vpn_of(0xaaaaee776000ULL), 0xaaaaee776ULL);
  EXPECT_EQ(page_offset(0xaaaaee775123ULL), 0x123u);
  EXPECT_EQ(page_offset(0xaaaaee775000ULL), 0u);
}

}  // namespace
}  // namespace msa::mem
