#include "mem/pagemap.h"

#include <gtest/gtest.h>

namespace msa::mem {
namespace {

TEST(PagemapEntry, EncodeSetsLinuxBits) {
  PagemapEntry e;
  e.present = true;
  e.pfn = 0x61c6d;
  const std::uint64_t raw = e.encode();
  EXPECT_NE(raw & (1ULL << 63), 0u);          // present bit
  EXPECT_EQ(raw & ((1ULL << 55) - 1), 0x61c6du);  // pfn field
}

TEST(PagemapEntry, AbsentEntryIsZeroPfn) {
  PagemapEntry e;  // not present
  EXPECT_EQ(e.encode(), 0u);
}

TEST(PagemapEntry, RoundTripAllFlags) {
  PagemapEntry e;
  e.present = true;
  e.soft_dirty = true;
  e.exclusive = true;
  e.file_page = true;
  e.pfn = (1ULL << 54) | 0x12345;
  EXPECT_EQ(PagemapEntry::decode(e.encode()), e);
}

TEST(PagemapEntry, SwappedEntryHidesPfn) {
  PagemapEntry e;
  e.present = true;
  e.swapped = true;
  e.pfn = 0x999;
  const PagemapEntry d = PagemapEntry::decode(e.encode());
  EXPECT_TRUE(d.swapped);
  EXPECT_EQ(d.pfn, 0u);
}

TEST(PagemapEntry, PfnMaskedTo55Bits) {
  PagemapEntry e;
  e.present = true;
  e.pfn = ~0ULL;  // overwide pfn must not clobber flag bits
  const std::uint64_t raw = e.encode();
  EXPECT_EQ(raw & ((1ULL << 55) - 1), (1ULL << 55) - 1);
  EXPECT_TRUE(PagemapEntry::decode(raw).present);
  EXPECT_FALSE(PagemapEntry::decode(raw).swapped);
}

TEST(PagemapWindow, ReflectsTableState) {
  PageTable pt;
  pt.map(100, 0x500);
  pt.map(102, 0x501);
  const auto window = pagemap_window(pt, 100, 4);
  ASSERT_EQ(window.size(), 4u);
  EXPECT_TRUE(PagemapEntry::decode(window[0]).present);
  EXPECT_EQ(PagemapEntry::decode(window[0]).pfn, 0x500u);
  EXPECT_FALSE(PagemapEntry::decode(window[1]).present);
  EXPECT_EQ(PagemapEntry::decode(window[2]).pfn, 0x501u);
  EXPECT_FALSE(PagemapEntry::decode(window[3]).present);
}

TEST(PagemapWindow, EmptyWindow) {
  PageTable pt;
  EXPECT_TRUE(pagemap_window(pt, 0, 0).empty());
}

TEST(PhysFromPagemap, ReconstructsPhysicalAddress) {
  // The attacker-side arithmetic of the paper's virtual_to_physical tool.
  PagemapEntry e;
  e.present = true;
  e.pfn = 0x61c6d;
  const auto pa = phys_from_pagemap(e.encode(), 0xaaaaee775730ULL);
  ASSERT_TRUE(pa.has_value());
  EXPECT_EQ(*pa, 0x61c6d730ULL);
}

TEST(PhysFromPagemap, AbsentOrSwappedGivesNullopt) {
  EXPECT_FALSE(phys_from_pagemap(0, 0x1000).has_value());
  PagemapEntry e;
  e.present = true;
  e.swapped = true;
  EXPECT_FALSE(phys_from_pagemap(e.encode(), 0x1000).has_value());
}

TEST(PhysFromPagemap, MatchesPageTableTranslate) {
  // Property: the external pagemap path and the internal page-table path
  // must agree for every mapped page.
  PageTable pt;
  for (Vpn vpn = 0xaaaaee775ULL; vpn < 0xaaaaee775ULL + 16; ++vpn) {
    pt.map(vpn, 0x60000 + (vpn & 0xFF));
  }
  const auto window = pagemap_window(pt, 0xaaaaee775ULL, 16);
  for (std::size_t i = 0; i < 16; ++i) {
    const VirtAddr va = ((0xaaaaee775ULL + i) << kPageShift) | 0x2AC;
    EXPECT_EQ(phys_from_pagemap(window[i], va), pt.translate(va));
  }
}

}  // namespace
}  // namespace msa::mem
