// Persistence layer tests: endian-safe encoding round-trips, CRC-framed
// record streams, and — the crash-safety property — torn or corrupt tails
// end the stream cleanly and append recovery chops them off.
#include "persist/record_io.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "persist/encoding.h"

namespace msa::persist {
namespace {

std::filesystem::path tmp_file(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "msa_persist_tests";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  return path;
}

void truncate_by(const std::filesystem::path& path, std::uintmax_t bytes) {
  const std::uintmax_t size = std::filesystem::file_size(path);
  ASSERT_GT(size, bytes);
  std::filesystem::resize_file(path, size - bytes);
}

void flip_byte_at_end(const std::filesystem::path& path,
                      std::uintmax_t from_end) {
  std::fstream f{path, std::ios::in | std::ios::out | std::ios::binary};
  ASSERT_TRUE(f.is_open());
  const auto size = std::filesystem::file_size(path);
  ASSERT_GT(size, from_end);
  f.seekg(static_cast<std::streamoff>(size - 1 - from_end));
  char c = 0;
  f.read(&c, 1);
  f.seekp(static_cast<std::streamoff>(size - 1 - from_end));
  c = static_cast<char>(c ^ 0x5a);
  f.write(&c, 1);
}

TEST(Encoding, FixedWidthRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeefu);
  w.u64(0x0123456789abcdefULL);
  w.f64(-0.0);
  w.f64(1.0 / 3.0);
  w.f64(std::numeric_limits<double>::infinity());

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  // Bit-exact, not just value-equal: -0.0 must stay negative.
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()),
            std::bit_cast<std::uint64_t>(-0.0));
  EXPECT_EQ(r.f64(), 1.0 / 3.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_TRUE(r.done());
}

TEST(Encoding, NanPayloadSurvives) {
  const double weird_nan =
      std::bit_cast<double>(0x7ff8dead00000001ULL);  // NaN with payload
  ByteWriter w;
  w.f64(weird_nan);
  ByteReader r{w.bytes()};
  EXPECT_EQ(std::bit_cast<std::uint64_t>(r.f64()), 0x7ff8dead00000001ULL);
}

TEST(Encoding, LittleEndianOnDisk) {
  ByteWriter w;
  w.u32(0x01020304u);
  const auto bytes = w.bytes();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 0x04);
  EXPECT_EQ(bytes[1], 0x03);
  EXPECT_EQ(bytes[2], 0x02);
  EXPECT_EQ(bytes[3], 0x01);
}

TEST(Encoding, VarintRoundTripAndSizes) {
  const struct {
    std::uint64_t value;
    std::size_t encoded_bytes;
  } cases[] = {
      {0, 1},      {1, 1},          {127, 1},
      {128, 2},    {16383, 2},      {16384, 3},
      {1u << 28, 5}, {1ULL << 56, 9}, {std::numeric_limits<std::uint64_t>::max(), 10},
  };
  for (const auto& c : cases) {
    ByteWriter w;
    w.varint(c.value);
    EXPECT_EQ(w.size(), c.encoded_bytes) << c.value;
    ByteReader r{w.bytes()};
    EXPECT_EQ(r.varint(), c.value);
    EXPECT_TRUE(r.done());
  }
}

TEST(Encoding, StringsWithEmbeddedNulsAndEmpty) {
  ByteWriter w;
  w.str("");
  w.str(std::string_view{"a\0b", 3});
  ByteReader r{w.bytes()};
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), (std::string{"a\0b", 3}));
}

TEST(Encoding, ReaderThrowsOnOverrun) {
  ByteWriter w;
  w.u16(7);
  ByteReader r{w.bytes()};
  EXPECT_THROW((void)r.u32(), std::out_of_range);
  // Unterminated varint: every byte has the continuation bit set.
  const std::uint8_t bad[] = {0x80, 0x80};
  ByteReader r2{bad};
  EXPECT_THROW((void)r2.varint(), std::out_of_range);
}

TEST(RecordIo, RoundTripManyRecords) {
  const auto path = tmp_file("roundtrip.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    for (std::uint8_t i = 0; i < 10; ++i) {
      std::vector<std::uint8_t> payload(i * 37u);
      for (std::size_t j = 0; j < payload.size(); ++j) {
        payload[j] = static_cast<std::uint8_t>(i + j);
      }
      writer.append(i, payload);
    }
  }
  RecordReader reader{path.string()};
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto rec = reader.next();
    ASSERT_TRUE(rec.has_value()) << unsigned{i};
    EXPECT_EQ(rec->type, i);
    ASSERT_EQ(rec->payload.size(), i * 37u);
    for (std::size_t j = 0; j < rec->payload.size(); ++j) {
      ASSERT_EQ(rec->payload[j], static_cast<std::uint8_t>(i + j));
    }
  }
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(reader.valid_bytes(), std::filesystem::file_size(path));
}

TEST(RecordIo, RejectsBadMagic) {
  const auto path = tmp_file("badmagic.rec");
  std::ofstream{path, std::ios::binary} << "this is not a record store";
  EXPECT_THROW(RecordReader{path.string()}, std::runtime_error);
  // Append recovery must refuse too rather than clobber a foreign file.
  EXPECT_THROW(
      (RecordWriter{path.string(), RecordWriter::Mode::kAppendRecover}),
      std::runtime_error);
}

TEST(RecordIo, TornHeaderStopsCleanly) {
  const auto path = tmp_file("tornheader.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    writer.append(1, std::vector<std::uint8_t>{1, 2, 3});
    writer.append(2, std::vector<std::uint8_t>{4, 5});
  }
  const auto intact = std::filesystem::file_size(path);
  // Simulate a crash mid-header: 3 stray bytes after the last record.
  std::ofstream{path, std::ios::binary | std::ios::app} << "xyz";

  RecordReader reader{path.string()};
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
  EXPECT_EQ(reader.valid_bytes(), intact);
}

TEST(RecordIo, TornBodyStopsCleanly) {
  const auto path = tmp_file("tornbody.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    writer.append(1, std::vector<std::uint8_t>(64, 0xaa));
    writer.append(2, std::vector<std::uint8_t>(64, 0xbb));
  }
  truncate_by(path, 10);  // last frame loses 10 body bytes

  RecordReader reader{path.string()};
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, 1);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
}

TEST(RecordIo, CrcMismatchStopsCleanly) {
  const auto path = tmp_file("badcrc.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    writer.append(1, std::vector<std::uint8_t>(32, 0x11));
    writer.append(2, std::vector<std::uint8_t>(32, 0x22));
  }
  flip_byte_at_end(path, 4);  // corrupt the last record's body

  RecordReader reader{path.string()};
  const auto first = reader.next();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->type, 1);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
}

TEST(RecordIo, InsaneLengthPrefixIsCorruption) {
  const auto path = tmp_file("insanelen.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    writer.append(1, std::vector<std::uint8_t>{9});
  }
  // Hand-craft a frame whose length prefix claims ~4 GB.
  ByteWriter bogus;
  bogus.u32(0xfffffff0u);
  bogus.u32(0);
  std::ofstream app{path, std::ios::binary | std::ios::app};
  app.write(reinterpret_cast<const char*>(bogus.bytes().data()),
            static_cast<std::streamsize>(bogus.size()));
  app.close();

  RecordReader reader{path.string()};
  EXPECT_TRUE(reader.next().has_value());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.truncated());
}

TEST(RecordIo, AppendRecoveryChopsTornTailAndContinues) {
  const auto path = tmp_file("recover.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kTruncate};
    writer.append(1, std::vector<std::uint8_t>(16, 0x01));
    writer.append(2, std::vector<std::uint8_t>(16, 0x02));
    writer.append(3, std::vector<std::uint8_t>(16, 0x03));
  }
  truncate_by(path, 7);  // tear record 3

  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kAppendRecover};
    writer.append(4, std::vector<std::uint8_t>(16, 0x04));
  }

  RecordReader reader{path.string()};
  std::vector<std::uint8_t> types;
  for (auto rec = reader.next(); rec.has_value(); rec = reader.next()) {
    types.push_back(rec->type);
  }
  EXPECT_FALSE(reader.truncated());
  EXPECT_EQ(types, (std::vector<std::uint8_t>{1, 2, 4}));
}

TEST(RecordIo, AppendRecoveryOnMissingFileCreatesFresh) {
  const auto path = tmp_file("freshappend.rec");
  {
    RecordWriter writer{path.string(), RecordWriter::Mode::kAppendRecover};
    writer.append(7, std::vector<std::uint8_t>{42});
  }
  RecordReader reader{path.string()};
  const auto rec = reader.next();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->type, 7);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.truncated());
}

}  // namespace
}  // namespace msa::persist
