#include "attack/pid_poller.h"

#include <gtest/gtest.h>

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  dbg::SystemDebugger dbg{sys, 1001};

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
  }
};

TEST(ParsePs, ParsesWellFormedListing) {
  const std::string ps =
      "PID PPID C STIME TTY TIME CMD\n"
      "1389 2 0 03:51 ? 00:00:00 [kworker/3:0-events]\n"
      "1391 2430 18 12:33 pts/1 00:00:00 ./resnet50_pt model.xmodel img.jpg\n";
  const auto entries = parse_ps(ps);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].pid, 1389);
  EXPECT_EQ(entries[0].cmd, "[kworker/3:0-events]");
  EXPECT_EQ(entries[1].pid, 1391);
  EXPECT_EQ(entries[1].ppid, 2430);
  EXPECT_EQ(entries[1].cmd, "./resnet50_pt model.xmodel img.jpg");
}

TEST(ParsePs, SkipsHeaderAndGarbage) {
  const std::string ps =
      "PID PPID C STIME TTY TIME CMD\n"
      "garbage line\n"
      "\n"
      "10 1 0 00:00 pts/0 00:00:00 sh\n";
  const auto entries = parse_ps(ps);
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].pid, 10);
}

TEST(ParsePs, EmptyListing) {
  EXPECT_TRUE(parse_ps("PID PPID C STIME TTY TIME CMD\n").empty());
  EXPECT_TRUE(parse_ps("").empty());
}

TEST(PidPoller, FindsVictimByCommandSubstring) {
  Fixture f;
  (void)f.sys.spawn(0, {"sh"}, "pts/0");
  const os::Pid victim =
      f.sys.spawn(1000, {"./resnet50_pt", "m.xmodel", "img.jpg"}, "pts/1");
  PidPoller poller{f.dbg};
  const auto hit = poller.find("resnet50");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->pid, victim);
  EXPECT_EQ(poller.polls(), 1u);
}

TEST(PidPoller, ReturnsNulloptWhenAbsent) {
  Fixture f;
  (void)f.sys.spawn(0, {"sh"}, "pts/0");
  PidPoller poller{f.dbg};
  EXPECT_FALSE(poller.find("resnet50").has_value());
}

TEST(PidPoller, TracksLivenessAcrossTermination) {
  // The paper's Figs. 6 -> 9 transition: pid visible, then gone.
  Fixture f;
  const os::Pid victim = f.sys.spawn(1000, {"./resnet50_pt"}, "pts/1");
  PidPoller poller{f.dbg};
  EXPECT_TRUE(poller.is_alive(victim));
  f.sys.terminate(victim);
  EXPECT_FALSE(poller.is_alive(victim));
}

TEST(PidPoller, LastListingIsRawPsText) {
  Fixture f;
  (void)f.sys.spawn(1000, {"./resnet50_pt"}, "pts/1");
  PidPoller poller{f.dbg};
  (void)poller.find("resnet50");
  EXPECT_NE(poller.last_listing().find("PID PPID"), std::string::npos);
  EXPECT_NE(poller.last_listing().find("./resnet50_pt"), std::string::npos);
}

}  // namespace
}  // namespace msa::attack
