#include "img/ppm.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace msa::img {
namespace {

TEST(Ppm, RoundTrip) {
  const Image img = make_test_image(13, 7, 21);
  EXPECT_EQ(from_ppm(to_ppm(img)), img);
}

TEST(Ppm, HeaderShape) {
  const Image img{3, 2};
  const std::string ppm = to_ppm(img);
  EXPECT_EQ(ppm.substr(0, 3), "P6\n");
  EXPECT_NE(ppm.find("3 2\n255\n"), std::string::npos);
  EXPECT_EQ(ppm.size(), std::string{"P6\n3 2\n255\n"}.size() + 3 * 2 * 3);
}

TEST(Ppm, ParsesComments) {
  const Image img{2, 2, Rgb{1, 2, 3}};
  std::string ppm = to_ppm(img);
  ppm.insert(3, "# a comment line\n");
  EXPECT_EQ(from_ppm(ppm), img);
}

TEST(Ppm, RejectsBadMagic) {
  EXPECT_THROW(from_ppm("P5\n1 1\n255\nxxx"), std::invalid_argument);
}

TEST(Ppm, RejectsTruncatedRaster) {
  const Image img{4, 4};
  std::string ppm = to_ppm(img);
  ppm.resize(ppm.size() - 5);
  EXPECT_THROW(from_ppm(ppm), std::invalid_argument);
}

TEST(Ppm, RejectsBadMaxval) {
  EXPECT_THROW(from_ppm("P6\n1 1\n65535\n" + std::string(6, 'x')),
               std::invalid_argument);
}

TEST(Ppm, RejectsZeroDimensions) {
  EXPECT_THROW(from_ppm("P6\n0 5\n255\n"), std::invalid_argument);
}

TEST(Ppm, RejectsGarbageHeader) {
  EXPECT_THROW(from_ppm("P6\nabc def\n255\n"), std::invalid_argument);
  EXPECT_THROW(from_ppm(""), std::invalid_argument);
}

TEST(Ppm, FileRoundTrip) {
  const Image img = make_test_image(5, 5, 9);
  const std::string path = ::testing::TempDir() + "/msa_test_image.ppm";
  write_ppm_file(img, path);
  EXPECT_EQ(read_ppm_file(path), img);
  std::remove(path.c_str());
}

TEST(Ppm, MissingFileThrows) {
  EXPECT_THROW(read_ppm_file("/nonexistent/dir/foo.ppm"), std::runtime_error);
}

}  // namespace
}  // namespace msa::img
