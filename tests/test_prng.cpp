#include "util/prng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace msa::util {
namespace {

TEST(Prng, SameSeedSameStream) {
  Prng a{123};
  Prng b{123};
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a(), b());
  }
}

TEST(Prng, DifferentSeedsDiverge) {
  Prng a{1};
  Prng b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, BelowStaysInRange) {
  Prng p{7};
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 17ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(p.below(bound), bound);
    }
  }
}

TEST(Prng, BelowOneAlwaysZero) {
  Prng p{9};
  for (int i = 0; i < 50; ++i) EXPECT_EQ(p.below(1), 0u);
}

TEST(Prng, BetweenInclusiveBounds) {
  Prng p{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = p.between(5, 8);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values occur
}

TEST(Prng, BetweenDegenerateRange) {
  Prng p{13};
  EXPECT_EQ(p.between(42, 42), 42u);
}

TEST(Prng, Uniform01InRange) {
  Prng p{17};
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = p.uniform01();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // crude mean sanity
}

TEST(Prng, ChanceExtremes) {
  Prng p{19};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(p.chance(0.0));
    EXPECT_TRUE(p.chance(1.0));
    EXPECT_FALSE(p.chance(-0.5));
    EXPECT_TRUE(p.chance(1.5));
  }
}

TEST(Prng, ChanceApproximatesProbability) {
  Prng p{23};
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (p.chance(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(Prng, ForkProducesIndependentStream) {
  Prng a{31};
  Prng b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, Splitmix64KnownBehaviour) {
  // splitmix64 is deterministic; two identical states produce identical
  // outputs, and the state advances.
  std::uint64_t s1 = 42, s2 = 42;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 42u);
}

class PrngBoundSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrngBoundSweep, NoModuloBiasSmoke) {
  // Each residue class of a small bound should be hit roughly uniformly.
  const std::uint64_t bound = GetParam();
  Prng p{bound * 977 + 1};
  std::vector<int> counts(static_cast<std::size_t>(bound), 0);
  const int n = 3000 * static_cast<int>(bound);
  for (int i = 0; i < n; ++i) {
    ++counts[static_cast<std::size_t>(p.below(bound))];
  }
  const double expected = static_cast<double>(n) / static_cast<double>(bound);
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.15);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallBounds, PrngBoundSweep,
                         ::testing::Values(2, 3, 5, 7, 10));

}  // namespace
}  // namespace msa::util
