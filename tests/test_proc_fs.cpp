#include "os/proc_fs.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace msa::os {
namespace {

TEST(ProcFs, StimeFormat) {
  EXPECT_EQ(format_stime(3 * 3600 + 51 * 60), "03:51");
  EXPECT_EQ(format_stime(12 * 3600 + 33 * 60), "12:33");
  EXPECT_EQ(format_stime(0), "00:00");
  EXPECT_EQ(format_stime(24 * 3600 + 60), "00:01");  // wraps at midnight
}

TEST(ProcFs, CpuTimeFormat) {
  EXPECT_EQ(format_cpu_time(0), "00:00:00");
  EXPECT_EQ(format_cpu_time(3661), "01:01:01");
}

TEST(ProcFs, PsLineMatchesPaperShape) {
  // Fig. 6: "1391 2430 18 12:33 pts/1 00:00:00 ./resnet50_pt ..."
  Process p{1391, 2430, 0,
            {"./resnet50_pt",
             "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel",
             "../images/001.jpg"},
            "pts/1", 12 * 3600 + 33 * 60, 0xaaaaee775000ULL};
  p.set_cpu_percent(18);
  EXPECT_EQ(format_ps_line(p),
            "1391 2430 18 12:33 pts/1 00:00:00 ./resnet50_pt "
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel "
            "../images/001.jpg");
}

TEST(ProcFs, KernelThreadRendersQuestionTty) {
  Process p{1389, 2, 0, {"[kworker/3:0-events]"}, "", 3 * 3600 + 51 * 60,
            0xaaaaee775000ULL};
  EXPECT_EQ(format_ps_line(p),
            "1389 2 0 03:51 ? 00:00:00 [kworker/3:0-events]");
}

TEST(ProcFs, MapsHeapLineMatchesPaperShape) {
  // Fig. 7: "aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0 [heap]"
  Process p{1391, 1, 0, {"x"}, "pts/1", 0, 0xaaaaee775000ULL};
  p.add_vma(Vma{.start = 0xaaaaee775000ULL,
                .end = 0xaaaaefd8a000ULL,
                .readable = true,
                .writable = true,
                .name = "[heap]"});
  EXPECT_EQ(format_maps(p),
            "aaaaee775000-aaaaefd8a000 rw-p 00000000 00:00 0 [heap]\n");
}

TEST(ProcFs, ParseMapsRoundTrip) {
  Process p{1, 1, 0, {"x"}, "pts/0", 0, 0xaaaaee775000ULL};
  p.add_vma(Vma{.start = 0xaaaaac000000ULL,
                .end = 0xaaaaac020000ULL,
                .readable = true,
                .executable = true,
                .name = "./resnet50_pt"});
  p.add_vma(Vma{.start = 0xaaaaee775000ULL,
                .end = 0xaaaaee800000ULL,
                .readable = true,
                .writable = true,
                .name = "[heap]"});
  p.add_vma(Vma{.start = 0xffffb13b5000ULL,
                .end = 0xffffb6c1f000ULL,
                .readable = true,
                .writable = true,
                .shared = true,
                .name = "/dev/dri/renderD128"});
  const auto parsed = parse_maps(format_maps(p));
  ASSERT_EQ(parsed.size(), 3u);
  EXPECT_EQ(parsed[1].start, 0xaaaaee775000ULL);
  EXPECT_EQ(parsed[1].end, 0xaaaaee800000ULL);
  EXPECT_EQ(parsed[1].perms, "rw-p");
  EXPECT_EQ(parsed[1].name, "[heap]");
  EXPECT_EQ(parsed[2].name, "/dev/dri/renderD128");
  EXPECT_EQ(parsed[2].perms, "rw-s");
}

TEST(ProcFs, ParseMapsSkipsGarbage) {
  const auto parsed = parse_maps("not a maps line\n\nxyz\n");
  EXPECT_TRUE(parsed.empty());
}

TEST(ProcFs, ParseMapsAnonymousRegionHasEmptyName) {
  const auto parsed = parse_maps("1000-2000 rw-p 00000000 00:00 0\n");
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_TRUE(parsed[0].name.empty());
}

TEST(ProcFs, PsHeaderColumns) {
  const auto fields = util::split_ws(ps_header());
  ASSERT_EQ(fields.size(), 7u);
  EXPECT_EQ(fields[0], "PID");
  EXPECT_EQ(fields[6], "CMD");
}

}  // namespace
}  // namespace msa::os
