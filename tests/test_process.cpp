#include "os/process.h"

#include <gtest/gtest.h>

namespace msa::os {
namespace {

Process make() {
  return Process{1391, 2430, 1000,
                 {"./resnet50_pt", "model.xmodel", "../images/001.jpg"},
                 "pts/1", 45180, 0xaaaaee775000ULL};
}

TEST(Process, IdentityAccessors) {
  const Process p = make();
  EXPECT_EQ(p.pid(), 1391);
  EXPECT_EQ(p.ppid(), 2430);
  EXPECT_EQ(p.uid(), 1000u);
  EXPECT_EQ(p.tty(), "pts/1");
  EXPECT_EQ(p.start_time_s(), 45180u);
  EXPECT_EQ(p.state(), ProcState::kRunning);
}

TEST(Process, CmdlineJoinsArgv) {
  const Process p = make();
  EXPECT_EQ(p.cmdline(), "./resnet50_pt model.xmodel ../images/001.jpg");
}

TEST(Process, VmasKeptSorted) {
  Process p = make();
  p.add_vma(Vma{.start = 0x3000, .end = 0x4000, .name = "c"});
  p.add_vma(Vma{.start = 0x1000, .end = 0x2000, .name = "a"});
  p.add_vma(Vma{.start = 0x2000, .end = 0x3000, .name = "b"});
  ASSERT_EQ(p.vmas().size(), 3u);
  EXPECT_EQ(p.vmas()[0].start, 0x1000u);
  EXPECT_EQ(p.vmas()[1].start, 0x2000u);
  EXPECT_EQ(p.vmas()[2].start, 0x3000u);
}

TEST(Process, FindVmaByAddressAndName) {
  Process p = make();
  p.add_vma(Vma{.start = 0x1000, .end = 0x2000, .name = "[heap]"});
  EXPECT_NE(p.find_vma(0x1800), nullptr);
  EXPECT_EQ(p.find_vma(0x2000), nullptr);  // end exclusive
  EXPECT_NE(p.find_vma_named("[heap]"), nullptr);
  EXPECT_EQ(p.find_vma_named("[stack]"), nullptr);
}

TEST(Process, PushBrkGrowsHeapVma) {
  Process p = make();
  p.add_vma(Vma{.start = p.heap_base(), .end = p.heap_base(), .name = "[heap]"});
  EXPECT_EQ(p.brk(), p.heap_base());
  const auto old = p.push_brk(0x5000);
  EXPECT_EQ(old, p.heap_base());
  EXPECT_EQ(p.brk(), p.heap_base() + 0x5000);
  EXPECT_EQ(p.find_vma_named("[heap]")->end, p.brk());
}

TEST(Process, StateAndCpuMutable) {
  Process p = make();
  p.set_state(ProcState::kSleeping);
  p.set_cpu_percent(18);
  EXPECT_EQ(p.state(), ProcState::kSleeping);
  EXPECT_EQ(p.cpu_percent(), 18);
}

TEST(Vma, PermsRendering) {
  Vma v;
  v.readable = true;
  v.writable = true;
  EXPECT_EQ(v.perms(), "rw-p");
  v.executable = true;
  v.writable = false;
  EXPECT_EQ(v.perms(), "r-xp");
  v.shared = true;
  EXPECT_EQ(v.perms(), "r-xs");
}

TEST(Vma, ContainsAndLength) {
  Vma v{.start = 0x1000, .end = 0x3000, .name = ""};
  EXPECT_EQ(v.length(), 0x2000u);
  EXPECT_TRUE(v.contains(0x1000));
  EXPECT_TRUE(v.contains(0x2FFF));
  EXPECT_FALSE(v.contains(0x3000));
  EXPECT_FALSE(v.contains(0xFFF));
}

}  // namespace
}  // namespace msa::os
