// Profile-cache tests: key discrimination, the per-key once-latch under
// concurrency, twin-board-pool reuse purity (a reused board must yield
// the same profile a fresh board would), seed invariance (the property
// that makes caching across reseeded trials sound), and failure caching.
//
// Cache observability lives on the process-wide obs metrics registry, so
// these tests assert DELTAS of the cache.* counters around each
// operation rather than absolute values (gtest runs tests in one binary
// sequentially, so a snapshot-before/delta-after window is race-free).
#include "attack/profile_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <thread>
#include <vector>

#include "attack/profiler.h"
#include "defense/presets.h"
#include "obs/metrics.h"

namespace msa::attack {
namespace {

/// Snapshot of the four cache.* registry counters; subtract two
/// snapshots to get the traffic a code region generated.
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t boards_built = 0;
  std::uint64_t boards_reused = 0;

  static CacheCounters now() {
    return CacheCounters{obs::counter("cache.profile_hits").value(),
                         obs::counter("cache.profile_misses").value(),
                         obs::counter("cache.twin_boards_built").value(),
                         obs::counter("cache.twin_boards_reused").value()};
  }

  [[nodiscard]] CacheCounters operator-(const CacheCounters& base) const {
    return CacheCounters{hits - base.hits, misses - base.misses,
                         boards_built - base.boards_built,
                         boards_reused - base.boards_reused};
  }
};

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

void expect_same_profile(const ModelProfile& a, const ModelProfile& b) {
  EXPECT_EQ(a.model_name, b.model_name);
  EXPECT_EQ(a.image_offset, b.image_offset);
  EXPECT_EQ(a.image_width, b.image_width);
  EXPECT_EQ(a.image_height, b.image_height);
  EXPECT_EQ(a.heap_bytes, b.heap_bytes);
  EXPECT_EQ(a.path_string_offset, b.path_string_offset);
}

TEST(ProfileKey, DiscriminatesTheLayoutKnobs) {
  const ScenarioConfig base = small_config();
  const ProfileKey key = ProfileKey::from_config(base);

  ScenarioConfig other = base;
  other.model_name = "squeezenet_pt";
  EXPECT_NE(ProfileKey::from_config(other), key);

  other = base;
  other.image_width = 64;
  EXPECT_NE(ProfileKey::from_config(other), key);

  other = base;
  other.system.placement = mem::PlacementPolicy::kRandomized;
  EXPECT_NE(ProfileKey::from_config(other), key);

  other = base;
  other.system.heap_va_aslr = true;
  EXPECT_NE(ProfileKey::from_config(other), key);

  other = base;
  other.attacker_uid = 4242;
  EXPECT_NE(ProfileKey::from_config(other), key);
}

TEST(ProfileKey, IgnoresSeedAndVictimSideKnobs) {
  // Per-trial reseeding and the victim's defensive policies must map to
  // the SAME key, or the cache would never hit inside a campaign.
  const ScenarioConfig base = small_config();
  const ProfileKey key = ProfileKey::from_config(base);

  ScenarioConfig other = base;
  other.system.seed ^= 0xDEADBEEFULL;
  other.image_seed ^= 0xDEADBEEFULL;
  EXPECT_EQ(ProfileKey::from_config(other), key);

  other = base;
  other.system.sanitize = mem::SanitizePolicy::kZeroOnFree;
  other.acl.mode = dbg::AclMode::kDisabled;
  other.firewall = dbg::FirewallMode::kOwnerOrResidue;
  other.attack_delay_s = 60.0;
  EXPECT_EQ(ProfileKey::from_config(other), key);
}

TEST(ProfileCache, HitReturnsTheProfiledValue) {
  ProfileCache cache;
  const ScenarioConfig cfg = small_config();
  const ModelProfile direct = profile_on_twin_board(cfg);
  const CacheCounters before = CacheCounters::now();
  const ModelProfile first = cache.get_or_profile(cfg);
  const ModelProfile second = cache.get_or_profile(cfg);
  expect_same_profile(first, direct);
  expect_same_profile(second, direct);
  const CacheCounters delta = CacheCounters::now() - before;
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.hits, 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ProfileCache, SeedChangesHitTheSameEntry) {
  // The invariant the campaign's byte-identity rests on: a profile
  // served to a reseeded trial equals the profile that trial would have
  // measured itself.
  ProfileCache cache;
  ScenarioConfig cfg = small_config();
  const CacheCounters before = CacheCounters::now();
  (void)cache.get_or_profile(cfg);

  ScenarioConfig reseeded = cfg;
  reseeded.system.seed ^= 0x1234567890ULL;
  reseeded.image_seed ^= 0x42ULL;
  const ModelProfile cached = cache.get_or_profile(reseeded);
  const CacheCounters delta = CacheCounters::now() - before;
  expect_same_profile(cached, profile_on_twin_board(reseeded));
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.hits, 1u);
}

TEST(ProfileCache, RandomizedPlacementProfileIsSeedInvariant) {
  // Physical-layout randomization scrambles frame placement, but the
  // scrape reassembles in VA order — profiles must not depend on the
  // seed even there, or caching under the physical_aslr defense would
  // corrupt campaign results.
  ScenarioConfig cfg =
      defense::preset("physical_aslr").apply(small_config());
  ScenarioConfig reseeded = cfg;
  reseeded.system.seed ^= 0xABCDEFULL;
  expect_same_profile(profile_on_twin_board(cfg),
                      profile_on_twin_board(reseeded));

  ProfileCache cache;
  expect_same_profile(cache.get_or_profile(cfg),
                      profile_on_twin_board(reseeded));
}

TEST(ProfileCache, ConcurrentMissesOnOneKeyProfileExactlyOnce) {
  // 8 threads race on a cold key: the once-latch must let exactly one
  // profile (1 miss) and serve the other 7 as hits, all with identical
  // bytes.
  ProfileCache cache;
  const ScenarioConfig cfg = small_config();
  const ModelProfile direct = profile_on_twin_board(cfg);

  constexpr unsigned kThreads = 8;
  std::vector<ModelProfile> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  const CacheCounters before = CacheCounters::now();
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back(
        [&, t] { results[t] = cache.get_or_profile(cfg); });
  }
  for (auto& t : threads) t.join();

  for (const ModelProfile& p : results) expect_same_profile(p, direct);
  const CacheCounters delta = CacheCounters::now() - before;
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.hits, kThreads - 1);
  EXPECT_EQ(delta.boards_built, 1u);
  EXPECT_EQ(delta.boards_reused, 0u);
}

TEST(ProfileCache, DistinctModelsMissSeparatelyAndReuseBoards) {
  // Sequential misses on the same board shape: the second model must
  // profile on the first's parked (scrubbed) board and still match a
  // fresh-board profile bit for bit — the pool-reuse purity property.
  ProfileCache cache;
  ScenarioConfig cfg = small_config();
  const CacheCounters before = CacheCounters::now();
  (void)cache.get_or_profile(cfg);

  ScenarioConfig other = cfg;
  other.model_name = "squeezenet_pt";
  const ModelProfile reused_board = cache.get_or_profile(other);
  const CacheCounters delta = CacheCounters::now() - before;
  expect_same_profile(reused_board, profile_on_twin_board(other));

  EXPECT_EQ(delta.misses, 2u);
  EXPECT_EQ(delta.hits, 0u);
  EXPECT_EQ(delta.boards_built, 1u);
  EXPECT_EQ(delta.boards_reused, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ProfileCache, DifferentPlacementNeverSharesBoards) {
  ProfileCache cache;
  ScenarioConfig sequential = small_config();
  ScenarioConfig randomized =
      defense::preset("physical_aslr").apply(small_config());
  const CacheCounters before = CacheCounters::now();
  (void)cache.get_or_profile(sequential);
  (void)cache.get_or_profile(randomized);
  const CacheCounters delta = CacheCounters::now() - before;
  EXPECT_EQ(delta.misses, 2u);
  EXPECT_EQ(delta.boards_built, 2u);
  EXPECT_EQ(delta.boards_reused, 0u);
}

TEST(ProfileCache, ProfilingFailureIsCachedAndRethrown) {
  // An unknown model makes the profiler throw; the cache must rethrow
  // the same error on the first call AND on later lookups (matching the
  // uncached behaviour of failing every trial), without deadlocking the
  // once-latch.
  ProfileCache cache;
  ScenarioConfig cfg = small_config();
  cfg.model_name = "no_such_model";
  const CacheCounters before = CacheCounters::now();
  EXPECT_THROW((void)cache.get_or_profile(cfg), std::invalid_argument);
  EXPECT_THROW((void)cache.get_or_profile(cfg), std::invalid_argument);
  const CacheCounters delta = CacheCounters::now() - before;
  EXPECT_EQ(delta.misses, 1u);
  EXPECT_EQ(delta.hits, 1u);
  // The half-profiled board was discarded, not parked.
  EXPECT_EQ(delta.boards_built, 1u);
  EXPECT_EQ(delta.boards_reused, 0u);

  // A healthy key still works after a failed one.
  ScenarioConfig good = small_config();
  expect_same_profile(cache.get_or_profile(good),
                      profile_on_twin_board(good));
}

TEST(ProfileCache, RunScenarioWithCacheMatchesWithout) {
  // The integration seam run_scenario(config, cache): identical result
  // fields with and without the cache, for a success and a denial cell.
  ProfileCache cache;
  for (const char* preset : {"baseline", "dbg_disabled"}) {
    const ScenarioConfig cfg =
        defense::preset(preset).apply(small_config());
    const ScenarioResult with = run_scenario(cfg, &cache);
    const ScenarioResult without = run_scenario(cfg);
    EXPECT_EQ(with.denied, without.denied) << preset;
    EXPECT_EQ(with.denial_reason, without.denial_reason) << preset;
    EXPECT_EQ(with.model_identified_correctly,
              without.model_identified_correctly)
        << preset;
    EXPECT_DOUBLE_EQ(with.pixel_match, without.pixel_match) << preset;
    EXPECT_DOUBLE_EQ(with.psnr, without.psnr) << preset;
    EXPECT_DOUBLE_EQ(with.descriptor_pixel_match,
                     without.descriptor_pixel_match)
        << preset;
  }
}

}  // namespace
}  // namespace msa::attack
