#include "attack/profiler.h"

#include <gtest/gtest.h>

#include "vitis/dpu_runner.h"

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};

  Fixture() { sys.add_user(1001, "attacker"); }
};

TEST(Profiler, MarkerOffsetMatchesRunnerLayout) {
  // The profiler must rediscover, from the outside, the image offset the
  // runner's layout defines.
  Fixture f;
  OfflineProfiler profiler{f.runtime, f.dbg};
  const ModelProfile p = profiler.profile_model("resnet50_pt", 64, 64, 1001);
  const vitis::HeapLayout lay =
      vitis::DpuRunner::layout_for(f.runtime.model("resnet50_pt"), 64, 64);
  EXPECT_EQ(p.image_offset, lay.image_off);
  EXPECT_EQ(p.image_width, 64u);
  EXPECT_EQ(p.heap_bytes, lay.total_bytes);
  EXPECT_GT(p.path_string_offset, 0u);
  EXPECT_LT(p.path_string_offset, lay.xmodel_off);
}

TEST(Profiler, OffsetStableAcrossRepeatedRuns) {
  // "the image's offset within the heap remained consistent" — run the
  // profiler twice on the same (already warm) board.
  Fixture f;
  OfflineProfiler profiler{f.runtime, f.dbg};
  const ModelProfile p1 = profiler.profile_model("resnet50_pt", 64, 64, 1001);
  const ModelProfile p2 = profiler.profile_model("resnet50_pt", 64, 64, 1001);
  EXPECT_EQ(p1.image_offset, p2.image_offset);
  EXPECT_EQ(p1.path_string_offset, p2.path_string_offset);
  EXPECT_EQ(p1.heap_bytes, p2.heap_bytes);
}

TEST(Profiler, OffsetTransfersAcrossBoards) {
  // Profile on one board, compare against a fresh board: the paper's
  // offline-training-to-online-attack transfer.
  Fixture f1, f2;
  OfflineProfiler prof1{f1.runtime, f1.dbg};
  OfflineProfiler prof2{f2.runtime, f2.dbg};
  EXPECT_EQ(prof1.profile_model("squeezenet_pt", 64, 64, 1001).image_offset,
            prof2.profile_model("squeezenet_pt", 64, 64, 1001).image_offset);
}

TEST(Profiler, DifferentModelsDifferentOffsets) {
  Fixture f;
  OfflineProfiler profiler{f.runtime, f.dbg};
  const auto r = profiler.profile_model("resnet50_pt", 64, 64, 1001);
  const auto s = profiler.profile_model("squeezenet_pt", 64, 64, 1001);
  EXPECT_NE(r.image_offset, s.image_offset);
}

TEST(Profiler, ImageSizeChangesHeapNotOffset) {
  Fixture f;
  OfflineProfiler profiler{f.runtime, f.dbg};
  const auto small = profiler.profile_model("resnet50_pt", 48, 48, 1001);
  const auto big = profiler.profile_model("resnet50_pt", 96, 96, 1001);
  EXPECT_EQ(small.image_offset, big.image_offset);
  EXPECT_LT(small.heap_bytes, big.heap_bytes);
}

TEST(Profiler, SanitizingBoardBreaksProfiling) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  OfflineProfiler profiler{runtime, dbg};
  EXPECT_THROW((void)profiler.profile_model("resnet50_pt", 64, 64, 1001),
               std::runtime_error);
}

TEST(Profiler, ProfileZooCoversEveryModel) {
  Fixture f;
  OfflineProfiler profiler{f.runtime, f.dbg};
  const ProfileDb db = profiler.profile_zoo(64, 64, 1001);
  EXPECT_EQ(db.size(), vitis::zoo_model_names().size());
  for (const auto& name : vitis::zoo_model_names()) {
    EXPECT_TRUE(db.find(name).has_value()) << name;
  }
}

TEST(ProfileDb, FindMissingReturnsNullopt) {
  ProfileDb db;
  EXPECT_FALSE(db.find("resnet50_pt").has_value());
  db.add(ModelProfile{.model_name = "resnet50_pt", .image_offset = 42});
  EXPECT_EQ(db.find("resnet50_pt")->image_offset, 42u);
}

TEST(ProfileDb, AddOverwritesExisting) {
  ProfileDb db;
  db.add(ModelProfile{.model_name = "m", .image_offset = 1});
  db.add(ModelProfile{.model_name = "m", .image_offset = 2});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.find("m")->image_offset, 2u);
}

}  // namespace
}  // namespace msa::attack
