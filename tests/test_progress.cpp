// Progress-view tests over crafted workers directories: snapshot
// arithmetic on a half-completed store (the `progress --once` path,
// pinned byte-exact), cross-worker dedup of completed cells, and the
// nothing-to-observe failure mode.
#include "obs/progress.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "persist/lease_log.h"

namespace msa::obs {
namespace {

using campaign::CampaignCell;
using campaign::CampaignOptions;
using campaign::CellStats;
using campaign::GridBuilder;
using persist::CampaignStore;
using persist::LeaseLog;
using persist::LeaseScheduler;
using persist::StoreManifest;
using persist::TrialRecord;

std::string tmp_dir(const char* name) {
  const auto dir =
      std::filesystem::temp_directory_path() / "msa_progress_tests" / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

attack::ScenarioConfig small_base() {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

/// 2 defenses x 2 models x 2 delays = 8 cells.
GridBuilder small_grid() {
  GridBuilder grid{small_base()};
  grid.defenses({"baseline", "zero_on_free"})
      .models({"resnet50_pt", "squeezenet_pt"})
      .attack_delays_s({0.0, 5.0});
  return grid;
}

StoreManifest manifest_for(const GridBuilder& grid, unsigned trials = 1) {
  StoreManifest m;
  m.grid_fingerprint = grid.fingerprint();
  m.grid_cells = grid.full_size();
  m.trials_per_cell = trials;
  m.trial_salt = CampaignOptions{}.trial_salt;
  m.axes = grid.axis_schema();
  return m;
}

/// Completes `cell` in both the worker's store and its lease log, with
/// one fabricated trial record per completion (progress counts records,
/// it never interprets trial results).
void complete_cell(CampaignStore& store, LeaseLog& lease,
                   const CampaignCell& cell) {
  lease.claim(cell.index);
  TrialRecord trial;
  trial.cell_index = cell.index;
  trial.trial = 0;
  trial.pixel_match = 1.0;
  store.append_trial(trial);
  CellStats stats;
  stats.index = cell.index;
  stats.coords = cell.coords;
  stats.trials = 1;
  store.complete_cell(stats);
  lease.complete(cell.index);
}

TEST(ProgressView, HalfCompletedStoreRendersExactly) {
  const std::string dir = tmp_dir("half");
  const GridBuilder grid = small_grid();
  const std::vector<CampaignCell> cells = grid.build();
  const StoreManifest m = manifest_for(grid);
  CampaignStore store{LeaseScheduler::store_path(dir, "w0"), m,
                      CampaignStore::Mode::kCreate};
  LeaseLog lease{LeaseScheduler::lease_path(dir, "w0"), m};
  for (std::size_t i = 0; i < 4; ++i) complete_cell(store, lease, cells[i]);
  lease.claim(cells[4].index);  // in flight, never completed

  ProgressView view{dir};
  EXPECT_EQ(view.manifest().grid_cells, 8u);
  const ProgressSnapshot snapshot = view.poll();
  EXPECT_EQ(snapshot.total_cells, 8u);
  EXPECT_EQ(snapshot.completed_cells, 4u);
  EXPECT_EQ(snapshot.claimed_cells, 1u);
  EXPECT_EQ(snapshot.trials_done, 4u);
  ASSERT_EQ(snapshot.workers.size(), 1u);
  EXPECT_EQ(snapshot.workers[0].id, "w0");
  EXPECT_FALSE(snapshot.complete());

  // The `progress --once` rendering, byte for byte.
  EXPECT_EQ(ProgressView::render(snapshot, -1.0),
            "sweep: 4/8 cells (50.0%), 4 trials, 1 claimed, 1 worker(s)\n"
            "rate:  - cells/s, eta -\n"
            "worker  state    claimed  completed  trials\n"
            "w0      working        1          4       4\n");
}

TEST(ProgressView, RateAndEtaRenderWhenKnown) {
  ProgressSnapshot snapshot;
  snapshot.total_cells = 10;
  snapshot.completed_cells = 4;
  snapshot.trials_done = 4;
  WorkerProgress wp;
  wp.id = "w0";
  wp.completed = 4;
  wp.trials = 4;
  snapshot.workers.push_back(wp);
  const std::string text = ProgressView::render(snapshot, 2.0);
  EXPECT_NE(text.find("rate:  2.00 cells/s, eta 3s\n"), std::string::npos);
  // Zero rate: remaining cells but no progress in the window -> no ETA.
  EXPECT_NE(ProgressView::render(snapshot, 0.0).find("eta -"),
            std::string::npos);
}

TEST(ProgressView, CompletedCellsAreDeduplicatedAcrossWorkers) {
  // w0 and w1 both completed cell 1 (a legal lease race): the union must
  // count it once, and the per-worker rows keep their own tallies.
  const std::string dir = tmp_dir("dedup");
  const GridBuilder grid = small_grid();
  const std::vector<CampaignCell> cells = grid.build();
  const StoreManifest m = manifest_for(grid);
  {
    CampaignStore s0{LeaseScheduler::store_path(dir, "w0"), m,
                     CampaignStore::Mode::kCreate};
    LeaseLog l0{LeaseScheduler::lease_path(dir, "w0"), m};
    complete_cell(s0, l0, cells[0]);
    complete_cell(s0, l0, cells[1]);
    CampaignStore s1{LeaseScheduler::store_path(dir, "w1"), m,
                     CampaignStore::Mode::kCreate};
    LeaseLog l1{LeaseScheduler::lease_path(dir, "w1"), m};
    complete_cell(s1, l1, cells[1]);
    complete_cell(s1, l1, cells[2]);
  }

  ProgressView view{dir};
  const ProgressSnapshot snapshot = view.poll();
  EXPECT_EQ(snapshot.completed_cells, 3u);
  EXPECT_EQ(snapshot.trials_done, 4u);
  ASSERT_EQ(snapshot.workers.size(), 2u);
  EXPECT_EQ(snapshot.workers[0].id, "w0");
  EXPECT_EQ(snapshot.workers[1].id, "w1");
  EXPECT_EQ(snapshot.workers[0].completed, 2u);
  EXPECT_EQ(snapshot.workers[1].completed, 2u);
}

TEST(ProgressView, PollIsIncrementalAndSeesNewRecords) {
  const std::string dir = tmp_dir("incremental");
  const GridBuilder grid = small_grid();
  const std::vector<CampaignCell> cells = grid.build();
  const StoreManifest m = manifest_for(grid);
  CampaignStore store{LeaseScheduler::store_path(dir, "w0"), m,
                      CampaignStore::Mode::kCreate};
  LeaseLog lease{LeaseScheduler::lease_path(dir, "w0"), m};
  complete_cell(store, lease, cells[0]);

  ProgressView view{dir};
  ProgressSnapshot snapshot = view.poll();
  EXPECT_EQ(snapshot.completed_cells, 1u);
  EXPECT_TRUE(snapshot.workers[0].advanced);  // first sighting counts

  snapshot = view.poll();
  EXPECT_FALSE(snapshot.workers[0].advanced);  // nothing new appended

  for (std::size_t i = 1; i < cells.size(); ++i) {
    complete_cell(store, lease, cells[i]);
  }
  snapshot = view.poll();
  EXPECT_EQ(snapshot.completed_cells, 8u);
  EXPECT_TRUE(snapshot.workers[0].advanced);
  EXPECT_TRUE(snapshot.complete());
  EXPECT_NE(ProgressView::render(snapshot, -1.0).find("rate:  complete\n"),
            std::string::npos);
}

TEST(ProgressView, EmptyDirectoryIsNotObservable) {
  const std::string dir = tmp_dir("empty");
  EXPECT_THROW((void)ProgressView{dir}, std::runtime_error);
  EXPECT_THROW((void)ProgressView{dir + "/missing"}, std::runtime_error);
}

}  // namespace
}  // namespace msa::obs
