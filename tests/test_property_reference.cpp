// Property tests against reference models: each simulator component is
// driven with seeded random operation streams and compared op-for-op
// with a trivially correct oracle (flat byte array, std::set, etc.).
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "dram/dram_model.h"
#include "mem/frame_allocator.h"
#include "mem/pagemap.h"
#include "util/hexdump.h"
#include "util/prng.h"

namespace msa {
namespace {

// ---------------------------------------------------------------- DRAM ----

class DramVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DramVsOracle, RandomOpStreamMatchesFlatArray) {
  constexpr std::uint64_t kSize = 1 << 20;  // 1 MiB window
  dram::DramConfig cfg = dram::DramConfig::test_small();
  dram::DramModel dut{cfg};
  std::vector<std::uint8_t> oracle(kSize, 0);

  util::Prng prng{GetParam()};
  for (int op = 0; op < 4000; ++op) {
    const std::uint64_t addr = prng.below(kSize - 16);
    switch (prng.below(7)) {
      case 0: {
        const auto v = static_cast<std::uint8_t>(prng());
        dut.write8(addr, v);
        oracle[addr] = v;
        break;
      }
      case 1: {
        const auto v = static_cast<std::uint32_t>(prng());
        dut.write32(addr, v);
        for (int i = 0; i < 4; ++i) {
          oracle[addr + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
        }
        break;
      }
      case 2: {
        const std::uint64_t v = prng();
        dut.write64(addr, v);
        for (int i = 0; i < 8; ++i) {
          oracle[addr + i] = static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF);
        }
        break;
      }
      case 3: {
        const std::uint64_t len = prng.between(1, 64);
        if (addr + len > kSize) break;
        const auto fill = static_cast<std::uint8_t>(prng());
        dut.fill_range(addr, len, fill);
        for (std::uint64_t i = 0; i < len; ++i) oracle[addr + i] = fill;
        break;
      }
      case 4: {
        ASSERT_EQ(dut.read8(addr), oracle[addr]) << "op " << op;
        break;
      }
      case 5: {
        std::uint32_t expect = 0;
        for (int i = 3; i >= 0; --i) {
          expect = (expect << 8) | oracle[addr + i];
        }
        ASSERT_EQ(dut.read32(addr), expect) << "op " << op;
        break;
      }
      case 6: {
        std::uint8_t buf[32];
        const std::size_t len = 1 + prng.below(32);
        if (addr + len > kSize) break;
        dut.read_block(addr, std::span{buf, len});
        for (std::size_t i = 0; i < len; ++i) {
          ASSERT_EQ(buf[i], oracle[addr + i]) << "op " << op << " i " << i;
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DramVsOracle,
                         ::testing::Values(1, 2, 3, 4, 99));

// ----------------------------------------------------------- allocator ----

class AllocatorVsOracle : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorVsOracle, RandomAllocFreeKeepsExactOwnership) {
  dram::DramModel dram{dram::DramConfig::test_small()};
  mem::PageFrameAllocator alloc{
      dram, mem::FrameAllocatorConfig{.first_pfn = 0x200,
                                      .frame_count = 128,
                                      .seed = GetParam()}};
  std::set<mem::Pfn> held;  // oracle of allocated frames

  util::Prng prng{GetParam() * 31 + 1};
  for (int op = 0; op < 3000; ++op) {
    if (held.empty() || prng.chance(0.55)) {
      const auto p = alloc.allocate(7);
      if (held.size() == 128) {
        ASSERT_FALSE(p.has_value()) << "pool over-committed at op " << op;
      } else {
        ASSERT_TRUE(p.has_value());
        ASSERT_TRUE(held.insert(*p).second) << "double hand-out at op " << op;
        ASSERT_GE(*p, 0x200u);
        ASSERT_LT(*p, 0x280u);
      }
    } else {
      // Free a pseudo-random held frame.
      auto it = held.begin();
      std::advance(it, static_cast<long>(prng.below(held.size())));
      alloc.free(*it);
      held.erase(it);
    }
    ASSERT_EQ(alloc.used_frames(), held.size());
    ASSERT_EQ(alloc.free_frames(), 128 - held.size());
  }
  // Drain and verify every frame is recoverable.
  for (const mem::Pfn p : held) alloc.free(p);
  for (int i = 0; i < 128; ++i) ASSERT_TRUE(alloc.allocate(9).has_value());
  ASSERT_FALSE(alloc.allocate(9).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorVsOracle, ::testing::Values(5, 6, 7));

// ----------------------------------------------------- page table + map ----

TEST(PageTableVsOracle, RandomMapUnmapMatchesStdMap) {
  mem::PageTable dut;
  std::map<mem::Vpn, mem::Pfn> oracle;
  util::Prng prng{4242};
  for (int op = 0; op < 5000; ++op) {
    const mem::Vpn vpn = 0xaaaa0000ULL + prng.below(256);
    if (prng.chance(0.5)) {
      if (oracle.count(vpn) == 0) {
        const mem::Pfn pfn = 0x60000 + prng.below(1 << 16);
        dut.map(vpn, pfn);
        oracle[vpn] = pfn;
      } else {
        ASSERT_THROW(dut.map(vpn, 1), std::logic_error);
      }
    } else {
      if (oracle.count(vpn) != 0) {
        ASSERT_EQ(dut.unmap(vpn), oracle[vpn]);
        oracle.erase(vpn);
      } else {
        ASSERT_THROW((void)dut.unmap(vpn), std::logic_error);
      }
    }
    ASSERT_EQ(dut.mapped_pages(), oracle.size());
  }
  // Final translation agreement across the whole oracle.
  for (const auto& [vpn, pfn] : oracle) {
    const mem::VirtAddr va = (vpn << mem::kPageShift) | 0x123;
    ASSERT_EQ(dut.translate(va).value(),
              mem::PageFrameAllocator::frame_to_phys(pfn) + 0x123);
  }
}

TEST(PagemapVsOracle, WindowAgreesWithTableForRandomLayouts) {
  util::Prng prng{777};
  for (int trial = 0; trial < 20; ++trial) {
    mem::PageTable table;
    const mem::Vpn base = 0xaaaaee775ULL;
    std::set<std::uint64_t> mapped;
    for (int i = 0; i < 64; ++i) {
      if (prng.chance(0.6)) {
        table.map(base + i, 0x60000 + static_cast<mem::Pfn>(i));
        mapped.insert(static_cast<std::uint64_t>(i));
      }
    }
    const auto window = mem::pagemap_window(table, base, 64);
    for (std::uint64_t i = 0; i < 64; ++i) {
      const auto e = mem::PagemapEntry::decode(window[i]);
      ASSERT_EQ(e.present, mapped.count(i) == 1);
      if (e.present) {
        ASSERT_EQ(e.pfn, 0x60000 + i);
      }
    }
  }
}

// ------------------------------------------------------------- hexdump ----

TEST(HexdumpVsOracle, RandomBuffersRoundTrip) {
  util::Prng prng{31337};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(prng.between(0, 300));
    for (auto& b : data) b = static_cast<std::uint8_t>(prng());
    ASSERT_EQ(util::parse_hex_dump(util::hex_dump(data)), data);
  }
}

}  // namespace
}  // namespace msa
