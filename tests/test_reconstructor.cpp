#include "attack/reconstructor.h"

#include <gtest/gtest.h>

#include "attack/scenario.h"

namespace msa::attack {
namespace {

/// Builds a (dump, profile, ground-truth image) triple by actually running
/// a victim and scraping it.
struct Harness {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  ModelProfile profile;
  ScrapedDump dump;
  img::Image truth;

  explicit Harness(std::uint32_t w = 48, std::uint32_t h = 48) {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    OfflineProfiler profiler{runtime, dbg};
    profile = profiler.profile_model("resnet50_pt", w, h, 1001);

    truth = img::make_test_image(w, h, 99);
    const vitis::VictimRun run =
        runtime.launch(1000, "resnet50_pt", truth, "pts/1");
    AddressResolver resolver{dbg};
    const ResolvedTarget target = resolver.resolve_heap(run.pid);
    sys.terminate(run.pid);
    MemoryScraper scraper{dbg};
    dump = scraper.scrape(target);
  }
};

TEST(Reconstructor, PixelExactFromHeapDump) {
  Harness h;
  const auto image = ImageReconstructor::reconstruct(h.dump, h.profile);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(*image, h.truth);
  EXPECT_DOUBLE_EQ(img::pixel_match_fraction(*image, h.truth), 1.0);
}

TEST(Reconstructor, TooSmallDumpReturnsNullopt) {
  Harness h;
  ScrapedDump truncated = h.dump;
  truncated.bytes.resize(static_cast<std::size_t>(h.profile.image_offset) + 10);
  EXPECT_FALSE(ImageReconstructor::reconstruct(truncated, h.profile).has_value());
}

TEST(Reconstructor, WrongProfileGeometryMisreconstructs) {
  // A profile for the wrong image size yields garbage, not a crash.
  Harness h;
  ModelProfile wrong = h.profile;
  wrong.image_width = 32;
  wrong.image_height = 32;
  const auto image = ImageReconstructor::reconstruct(h.dump, wrong);
  ASSERT_TRUE(image.has_value());
  EXPECT_LT(img::pixel_match_fraction(*image,
                                      img::resize_nearest(h.truth, 32, 32)),
            0.5);
}

TEST(Reconstructor, FromPhysicalScanWithContiguousPlacement) {
  // Post-mortem path: raw pool sweep, anchor on the install-path string.
  Harness h;
  dbg::SystemDebugger dbg2{h.sys, 1001};
  MemoryScraper scraper{dbg2};
  const dram::PhysAddr pool_base = mem::PageFrameAllocator::frame_to_phys(
      h.sys.config().pool_first_pfn);
  const ScrapedDump scan =
      scraper.scrape_physical_range(pool_base, h.profile.heap_bytes * 2);
  const auto image = ImageReconstructor::reconstruct_from_scan(scan, h.profile);
  ASSERT_TRUE(image.has_value());
  EXPECT_EQ(*image, h.truth);
}

TEST(Reconstructor, FromScanFailsWithoutAnchor) {
  Harness h;
  ScrapedDump empty;
  empty.bytes.assign(4096, 0);
  EXPECT_FALSE(
      ImageReconstructor::reconstruct_from_scan(empty, h.profile).has_value());
}

TEST(Reconstructor, FromScanFailsWhenImageCutOff) {
  Harness h;
  dbg::SystemDebugger dbg2{h.sys, 1001};
  MemoryScraper scraper{dbg2};
  const dram::PhysAddr pool_base = mem::PageFrameAllocator::frame_to_phys(
      h.sys.config().pool_first_pfn);
  // Sweep ends before the image does.
  const ScrapedDump scan = scraper.scrape_physical_range(
      pool_base, h.profile.image_offset + 100);
  EXPECT_FALSE(
      ImageReconstructor::reconstruct_from_scan(scan, h.profile).has_value());
}

TEST(Reconstructor, CorruptedVictimImageReconstructsAllFF) {
  // Fig. 12: the corrupted input reads back as FF runs and reconstructs
  // as the all-white image.
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};
  OfflineProfiler profiler{runtime, dbg};
  const ModelProfile profile =
      profiler.profile_model("resnet50_pt", 40, 40, 1001);

  img::Image corrupted{40, 40};
  corrupted.fill_region(img::kCorruptPixel, 1.0);
  const vitis::VictimRun run =
      runtime.launch(1000, "resnet50_pt", corrupted, "pts/1");
  AddressResolver resolver{dbg};
  const ResolvedTarget target = resolver.resolve_heap(run.pid);
  sys.terminate(run.pid);
  MemoryScraper scraper{dbg};
  const ScrapedDump dump = scraper.scrape(target);

  const auto image = ImageReconstructor::reconstruct(dump, profile);
  ASSERT_TRUE(image.has_value());
  for (const img::Rgb& p : image->pixels()) EXPECT_EQ(p, img::kCorruptPixel);
}

}  // namespace
}  // namespace msa::attack
