#include "dram/remanence.h"

#include <gtest/gtest.h>

namespace msa::dram {
namespace {

TEST(Remanence, RefreshActiveMeansNoDecay) {
  // The paper's setting: the board stays powered, DRAM refreshed; residue
  // survives bit-exact.
  DramModel d{DramConfig::test_small()};
  d.fill_range(0x1000, 0x1000, 0xA7);
  const std::uint32_t before = d.checksum(0x1000, 0x1000);

  RemanenceModel rem{RemanenceParams{.refresh_active = true}};
  util::Prng prng{1};
  EXPECT_EQ(rem.apply(d, 0x1000, 0x1000, 3600.0, prng), 0u);
  EXPECT_EQ(d.checksum(0x1000, 0x1000), before);
}

TEST(Remanence, DecayProbabilityZeroWhenRefreshed) {
  RemanenceModel rem{RemanenceParams{.refresh_active = true}};
  EXPECT_DOUBLE_EQ(rem.decay_probability(100.0), 0.0);
}

TEST(Remanence, DecayProbabilityMonotonicInTime) {
  RemanenceModel rem{
      RemanenceParams{.refresh_active = false, .retention_half_life_s = 2.0}};
  double prev = 0.0;
  for (double t : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const double p = rem.decay_probability(t);
    EXPECT_GT(p, prev);
    prev = p;
  }
  EXPECT_NEAR(rem.decay_probability(2.0), 0.5, 1e-9);  // one half-life
  EXPECT_LT(rem.decay_probability(1e9), 1.0 + 1e-12);
}

TEST(Remanence, NegativeOrZeroElapsedNoDecay) {
  RemanenceModel rem{RemanenceParams{.refresh_active = false}};
  EXPECT_DOUBLE_EQ(rem.decay_probability(0.0), 0.0);
  EXPECT_DOUBLE_EQ(rem.decay_probability(-5.0), 0.0);
}

TEST(Remanence, UnrefreshedDataDegrades) {
  DramModel d{DramConfig::test_small()};
  d.fill_range(0x2000, 0x1000, 0xFF);
  RemanenceModel rem{RemanenceParams{.refresh_active = false,
                                     .retention_half_life_s = 1.0,
                                     .anti_cell_fraction = 0.0}};
  util::Prng prng{42};
  const std::uint64_t flips = rem.apply(d, 0x2000, 0x1000, 1.0, prng);
  // Half-life elapsed, all-ones data, true cells discharge to 0:
  // expect roughly half of the 0x1000*8 bits flipped.
  const double expected = 0x1000 * 8 * 0.5;
  EXPECT_NEAR(static_cast<double>(flips), expected, expected * 0.1);
  EXPECT_TRUE(d.any_nonzero(0x2000, 0x1000));  // partial, not total, loss
}

TEST(Remanence, ZeroDataWithTrueCellsDoesNotFlip) {
  // All-zero content in pure true-cell DRAM is already at discharge value.
  DramModel d{DramConfig::test_small()};
  RemanenceModel rem{RemanenceParams{.refresh_active = false,
                                     .retention_half_life_s = 1.0,
                                     .anti_cell_fraction = 0.0}};
  util::Prng prng{7};
  EXPECT_EQ(rem.apply(d, 0x3000, 0x1000, 100.0, prng), 0u);
}

TEST(Remanence, AntiCellsFlipZerosUpward) {
  DramModel d{DramConfig::test_small()};
  d.zero_range(0x4000, 0x1000);
  RemanenceModel rem{RemanenceParams{.refresh_active = false,
                                     .retention_half_life_s = 1.0,
                                     .anti_cell_fraction = 1.0}};
  util::Prng prng{11};
  const std::uint64_t flips = rem.apply(d, 0x4000, 0x1000, 1.0, prng);
  EXPECT_GT(flips, 0u);
  EXPECT_TRUE(d.any_nonzero(0x4000, 0x1000));
}

TEST(Remanence, DeterministicGivenSeed) {
  RemanenceModel rem{RemanenceParams{.refresh_active = false,
                                     .retention_half_life_s = 2.0}};
  DramModel d1{DramConfig::test_small()};
  DramModel d2{DramConfig::test_small()};
  d1.fill_range(0x1000, 0x800, 0x3C);
  d2.fill_range(0x1000, 0x800, 0x3C);
  util::Prng p1{99}, p2{99};
  EXPECT_EQ(rem.apply(d1, 0x1000, 0x800, 1.5, p1),
            rem.apply(d2, 0x1000, 0x800, 1.5, p2));
  EXPECT_EQ(d1.checksum(0x1000, 0x800), d2.checksum(0x1000, 0x800));
}

}  // namespace
}  // namespace msa::dram
