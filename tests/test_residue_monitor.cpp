#include "attack/residue_monitor.h"

#include <gtest/gtest.h>

#include "dbg/memory_firewall.h"
#include "vitis/runtime.h"

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
  }

  ResidueMonitor monitor(std::uint64_t pages = 64) {
    return ResidueMonitor{
        dbg, mem::PageFrameAllocator::frame_to_phys(sys.config().pool_first_pfn),
        pages};
  }
};

TEST(ResidueMonitor, ZeroWindowRejected) {
  Fixture f;
  EXPECT_THROW(
      (ResidueMonitor{f.dbg, 0x100000, 0}), std::invalid_argument);
}

TEST(ResidueMonitor, IdleBoardShowsNoActivity) {
  Fixture f;
  auto mon = f.monitor();
  (void)mon.poll();  // prime
  const ActivityDelta delta = mon.poll();
  EXPECT_FALSE(delta.any());
  EXPECT_EQ(delta.changed_bytes(), 0u);
}

TEST(ResidueMonitor, FirstPollPrimesWithoutReporting) {
  Fixture f;
  auto mon = f.monitor();
  EXPECT_FALSE(mon.poll().any());
}

TEST(ResidueMonitor, DetectsVictimLaunch) {
  Fixture f;
  auto mon = f.monitor();
  (void)mon.poll();  // prime

  const vitis::VictimRun run = f.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 3), "pts/1");
  const ActivityDelta delta = mon.poll();
  EXPECT_TRUE(delta.any());
  // Working-set estimate matches the victim's heap page count.
  const std::uint64_t heap_pages =
      (f.sys.process(run.pid).brk() - run.heap_base + mem::kPageSize - 1) /
      mem::kPageSize;
  EXPECT_EQ(delta.largest_extent, heap_pages);
}

TEST(ResidueMonitor, TerminationWithoutSanitizationIsInvisible) {
  // Key residue property from the monitor's viewpoint: exit changes no
  // bytes, so a pure diff cannot tell "running" from "dead but scrapable".
  Fixture f;
  const vitis::VictimRun run = f.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 3), "pts/1");
  auto mon = f.monitor();
  (void)mon.poll();  // prime with the victim resident
  f.sys.terminate(run.pid);
  EXPECT_FALSE(mon.poll().any());
}

TEST(ResidueMonitor, ZeroOnFreeTerminationIsVisible) {
  // With scrubbing, exit zeroes the frames — the monitor sees the wipe.
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  vitis::VitisAiRuntime runtime{sys};
  dbg::SystemDebugger dbg{sys, 1001};

  const vitis::VictimRun run = runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 3), "pts/1");
  ResidueMonitor mon{
      dbg, mem::PageFrameAllocator::frame_to_phys(cfg.pool_first_pfn), 64};
  (void)mon.poll();
  sys.terminate(run.pid);
  EXPECT_TRUE(mon.poll().any());
}

TEST(ResidueMonitor, DiffRejectsMismatchedWindows) {
  Fixture f;
  auto mon_a = f.monitor(16);
  auto mon_b = f.monitor(32);
  const PoolSnapshot a = mon_a.snapshot();
  const PoolSnapshot b = mon_b.snapshot();
  EXPECT_THROW((void)ResidueMonitor::diff(a, b), std::invalid_argument);
}

TEST(ResidueMonitor, ChangedPagesAreExact) {
  Fixture f;
  auto mon = f.monitor(16);
  const PoolSnapshot before = mon.snapshot();
  // Dirty exactly pages 3 and 7 of the window via raw devmem writes.
  const dram::PhysAddr base =
      mem::PageFrameAllocator::frame_to_phys(f.sys.config().pool_first_pfn);
  f.sys.devmem_write32(base + 3 * 4096 + 100, 0xAA55AA55);
  f.sys.devmem_write32(base + 7 * 4096, 0x12345678);
  const PoolSnapshot after = mon.snapshot();
  const ActivityDelta delta = ResidueMonitor::diff(before, after);
  EXPECT_EQ(delta.changed_pages, (std::vector<std::uint64_t>{3, 7}));
  EXPECT_EQ(delta.largest_extent, 1u);
}

TEST(ResidueMonitor, FirewallBlocksMonitoring) {
  // The owner-residue firewall shuts down the surveillance channel too.
  Fixture f;
  const vitis::VictimRun run = f.runtime.launch(
      1000, "resnet50_pt", img::make_test_image(48, 48, 3), "pts/1");
  (void)run;
  dbg::MemoryFirewall fw{f.sys, dbg::FirewallMode::kOwnerOrResidue};
  f.dbg.set_firewall(&fw);
  auto mon = f.monitor();
  EXPECT_THROW((void)mon.snapshot(), dbg::DebuggerAccessDenied);
  f.dbg.set_firewall(nullptr);
}

}  // namespace
}  // namespace msa::attack
