#include "defense/sanitize_cost.h"

#include <gtest/gtest.h>

namespace msa::defense {
namespace {

SanitizeCostModel make() {
  return SanitizeCostModel{dram::DramTimingModel{dram::DramConfig::zcu104()}};
}

TEST(SanitizeCost, MakeFrameSetShapes) {
  EXPECT_EQ(make_frame_set(100, 3), (std::vector<mem::Pfn>{100, 101, 102}));
  EXPECT_EQ(make_frame_set(100, 3, 4), (std::vector<mem::Pfn>{100, 104, 108}));
  EXPECT_TRUE(make_frame_set(0, 0).empty());
  EXPECT_EQ(make_frame_set(5, 2, 0), (std::vector<mem::Pfn>{5, 6}));  // stride 0 -> 1
}

TEST(SanitizeCost, InDramZeroingOrdersOfMagnitudeCheaper) {
  auto model = make();
  const auto freed = make_frame_set(0x60000, 256);
  const auto r = model.cost(freed, {});
  EXPECT_GT(r.cpu_zero_ns, r.rowclone_ns * 5);
  EXPECT_GT(r.rowclone_ns, r.rowreset_ns);
  EXPECT_EQ(r.frames, 256u);
  EXPECT_EQ(r.bytes_requested, 256u * 4096);
}

TEST(SanitizeCost, ContiguousFramesShareRows) {
  auto model = make();
  // 8 KiB rows hold two 4 KiB pages: 256 contiguous frames -> 128 rows.
  const auto r = model.cost(make_frame_set(0x60000, 256), {});
  EXPECT_EQ(r.rows_touched, 128u);
}

TEST(SanitizeCost, ScatteredFramesTouchMoreRows) {
  auto model = make();
  const auto contiguous = model.cost(make_frame_set(0x60000, 128), {});
  const auto scattered = model.cost(make_frame_set(0x60000, 128, 2), {});
  EXPECT_GT(scattered.rows_touched, contiguous.rows_touched);
  EXPECT_GT(scattered.rowclone_ns, contiguous.rowclone_ns);
}

TEST(SanitizeCost, NoCollateralWhenNoNeighbours) {
  auto model = make();
  const auto r = model.cost(make_frame_set(0x60000, 16), {});
  EXPECT_EQ(r.collateral_bytes, 0u);
}

TEST(SanitizeCost, CollateralWhenTenantsInterleave) {
  // Freed frames at even PFNs, a live tenant at odd PFNs: every row the
  // in-DRAM op clears contains 4 KiB of live data.
  auto model = make();
  const auto freed = make_frame_set(0x60000, 16, 2);   // even
  const auto live = make_frame_set(0x60001, 16, 2);    // odd
  const auto r = model.cost(freed, live);
  EXPECT_EQ(r.collateral_bytes, 16u * 4096);
}

TEST(SanitizeCost, ContiguousFreedNextToLiveBlockNoOverlap) {
  // Live frames in different rows entirely -> zero collateral.
  auto model = make();
  const auto freed = make_frame_set(0x60000, 16);      // rows 0..7
  const auto live = make_frame_set(0x60100, 16);       // far away
  EXPECT_EQ(model.cost(freed, live).collateral_bytes, 0u);
}

TEST(SanitizeCost, LiveListedAsFreedIsIgnored) {
  auto model = make();
  const auto freed = make_frame_set(0x60000, 4);
  const auto r = model.cost(freed, freed);  // caller error: same frames
  EXPECT_EQ(r.collateral_bytes, 0u);
}

TEST(SanitizeCost, CpuCostScalesWithFrames) {
  auto model = make();
  const double c64 = model.cost(make_frame_set(0x60000, 64), {}).cpu_zero_ns;
  const double c256 = model.cost(make_frame_set(0x60000, 256), {}).cpu_zero_ns;
  EXPECT_NEAR(c256 / c64, 4.0, 0.5);
}

TEST(SanitizeCost, SpeedupAccessorConsistent) {
  auto model = make();
  const auto r = model.cost(make_frame_set(0x60000, 32), {});
  EXPECT_NEAR(r.cpu_over_rowclone(), r.cpu_zero_ns / r.rowclone_ns, 1e-9);
}

TEST(SanitizeCost, EmptyFreeSetIsFree) {
  auto model = make();
  const auto r = model.cost({}, make_frame_set(0x60000, 8));
  EXPECT_EQ(r.frames, 0u);
  EXPECT_DOUBLE_EQ(r.cpu_zero_ns, 0.0);
  EXPECT_DOUBLE_EQ(r.rowclone_ns, 0.0);
  EXPECT_EQ(r.rows_touched, 0u);
  EXPECT_EQ(r.collateral_bytes, 0u);
}

}  // namespace
}  // namespace msa::defense
