// End-to-end scenario tests: the paper's headline claims, verified
// against ground truth under every relevant configuration.
#include "attack/scenario.h"

#include <gtest/gtest.h>

#include "attack/hexdump_analyzer.h"

namespace msa::attack {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

TEST(ScenarioE2E, BaselineAttackFullySucceeds) {
  const ScenarioResult r = run_scenario(small_config());
  EXPECT_FALSE(r.denied);
  EXPECT_TRUE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 1.0);
  EXPECT_TRUE(r.full_success());
  EXPECT_TRUE(r.report.deep_match.has_value());
}

TEST(ScenarioE2E, CorruptedImageExperimentMatchesFig12) {
  // The paper's marker experiment: a 0xFFFFFF input shows up as FF rows.
  ScenarioConfig cfg = small_config();
  cfg.corrupt_image = true;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_TRUE(r.report.reconstructed_image.has_value());
  for (const img::Rgb& p : r.report.reconstructed_image->pixels()) {
    EXPECT_EQ(p, img::kCorruptPixel);
  }
  EXPECT_TRUE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 1.0);  // matches the corrupted input
}

TEST(ScenarioE2E, VictimInferenceActuallyRan) {
  const ScenarioResult r = run_scenario(small_config());
  // Ground truth top class exists (the victim really computed something).
  EXPECT_LT(r.victim_top_class, 10u);
}

TEST(ScenarioE2E, ZeroOnFreeDefeatsScraping) {
  ScenarioConfig cfg = small_config();
  cfg.system.sanitize = mem::SanitizePolicy::kZeroOnFree;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);  // the attack runs, it just finds nothing
  EXPECT_FALSE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 0.0);
}

TEST(ScenarioE2E, ZeroOnAllocDoesNotDefeatLiveWindowAttack) {
  // Zero-on-alloc scrubs only at reuse time: the residue survives in free
  // frames, so the paper's attack still fully succeeds — a key subtlety.
  ScenarioConfig cfg = small_config();
  cfg.system.sanitize = mem::SanitizePolicy::kZeroOnAlloc;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioE2E, ProcAclDeniesAttack) {
  ScenarioConfig cfg = small_config();
  cfg.system.proc_access = os::ProcAccessPolicy::kOwnerOrRoot;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.denied);
  EXPECT_FALSE(r.model_identified_correctly);
}

TEST(ScenarioE2E, DebuggerAclDeniesAttack) {
  ScenarioConfig cfg = small_config();
  cfg.acl.mode = dbg::AclMode::kOwnerOnly;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.denied);
}

TEST(ScenarioE2E, DisabledDebuggerDeniesAtStepOne) {
  ScenarioConfig cfg = small_config();
  cfg.acl.mode = dbg::AclMode::kDisabled;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.denied);
}

TEST(ScenarioE2E, PhysicalAslrDoesNotStopLiveWindowAttack) {
  // Translations resolved pre-termination remain valid regardless of
  // placement randomization.
  ScenarioConfig cfg = small_config();
  cfg.system.placement = mem::PlacementPolicy::kRandomized;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioE2E, HeapVaAslrDoesNotStopAttack) {
  // maps exposes the randomized base; offsets are heap-relative.
  ScenarioConfig cfg = small_config();
  cfg.system.heap_va_aslr = true;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioE2E, PostMortemScanSucceedsWithDeterministicPlacement) {
  // The paper's §VI point 3: deterministic physical layout lets even a
  // late attacker find everything by sweeping the pool.
  ScenarioConfig cfg = small_config();
  cfg.post_mortem_scan = true;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  EXPECT_TRUE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 1.0);
}

TEST(ScenarioE2E, PhysicalAslrBreaksPostMortemReconstruction) {
  // With randomized placement the heap pages scatter: strings may still
  // identify the model, but offset-based image reconstruction collapses.
  ScenarioConfig cfg = small_config();
  cfg.post_mortem_scan = true;
  cfg.system.placement = mem::PlacementPolicy::kRandomized;
  cfg.scan_bytes = 2ULL * 1024 * 1024;  // generous sweep of the small pool
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  EXPECT_LT(r.pixel_match, 0.9);  // reconstruction no longer pixel-exact
}

TEST(ScenarioE2E, Zcu102Generalizes) {
  // The paper re-verified the attack on the ZCU102.
  ScenarioConfig cfg = small_config();
  cfg.system = os::SystemConfig::zcu102();
  cfg.image_width = 48;
  cfg.image_height = 48;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioE2E, PartialCorruptionPreserved) {
  ScenarioConfig cfg = small_config();
  cfg.corrupt_image = true;
  cfg.corrupt_fraction = 0.2;
  const ScenarioResult r = run_scenario(cfg);
  ASSERT_TRUE(r.report.reconstructed_image.has_value());
  std::size_t ff = 0;
  for (const img::Rgb& p : r.report.reconstructed_image->pixels()) {
    if (p == img::kCorruptPixel) ++ff;
  }
  const std::size_t total = r.report.reconstructed_image->pixel_count();
  EXPECT_NEAR(static_cast<double>(ff) / total, 0.2, 0.02);
  EXPECT_DOUBLE_EQ(r.pixel_match, 1.0);
}

class ScenarioModelSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioModelSweep, AttackSucceedsAgainstEveryZooModel) {
  ScenarioConfig cfg = small_config();
  cfg.model_name = GetParam();
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success()) << GetParam();
  EXPECT_EQ(r.report.identified_model, GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllModels, ScenarioModelSweep,
                         ::testing::Values("resnet50_pt", "squeezenet_pt",
                                           "inception_v1_tf", "mobilenet_v2_tf",
                                           "yolov3_tiny_tf"));

class ScenarioSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ScenarioSeedSweep, SuccessIndependentOfVictimImage) {
  // Property: the attack does not depend on image content.
  ScenarioConfig cfg = small_config();
  cfg.image_seed = GetParam();
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioSeedSweep,
                         ::testing::Values(1, 42, 1000, 31415, 271828));

}  // namespace
}  // namespace msa::attack
