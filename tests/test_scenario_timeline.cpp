// Post-termination timeline scenarios: scrubber daemons and power-cycle
// remanence acting between victim exit and the scrape.
#include "attack/scenario.h"

#include <gtest/gtest.h>

namespace msa::attack {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  return cfg;
}

TEST(ScenarioTimeline, ZeroDelayBaselineUnchanged) {
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 0.0;
  cfg.scrubber_bytes_per_s = 1e9;  // irrelevant without a delay
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioTimeline, FastScrubberBeatsSlowAttacker) {
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 5.0;
  cfg.scrubber_bytes_per_s = 1e9;  // clears everything within the delay
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  EXPECT_FALSE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 0.0);
}

TEST(ScenarioTimeline, SlowScrubberLosesToFastAttacker) {
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 0.5;
  cfg.scrubber_bytes_per_s = 4096.0;  // one page per second
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.model_identified_correctly);
  EXPECT_DOUBLE_EQ(r.pixel_match, 1.0);
}

TEST(ScenarioTimeline, PartialScrubDegradesGracefully) {
  // The scrubber clears low frames first; the victim's heap spans several
  // pages, so a mid-rate scrubber wipes the strings/model prefix before
  // the image tail — model-id dies first, image may survive briefly.
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 1.0;
  const std::uint64_t heap_guess = 40 * 1024;  // ~10 pages for 48x48
  cfg.scrubber_bytes_per_s = static_cast<double>(heap_guess) / 2.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  // At least one of the two recovery goals must have degraded.
  EXPECT_TRUE(!r.model_identified_correctly || r.pixel_match < 1.0 ||
              r.descriptor_pixel_match < 1.0);
}

TEST(ScenarioTimeline, PowerCycleDecayRuinsRecovery) {
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 20.0;  // ten half-lives unrefreshed
  cfg.power_cycled = true;
  cfg.retention_half_life_s = 2.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  // Strings and CRCs cannot survive ~100% bit decay.
  EXPECT_FALSE(r.model_identified_correctly);
  EXPECT_LT(r.pixel_match, 0.1);
}

TEST(ScenarioTimeline, BriefPowerCyclePartiallyDegrades) {
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 0.2;  // a tenth of a half-life
  cfg.power_cycled = true;
  cfg.retention_half_life_s = 2.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_FALSE(r.denied);
  // ~6.7 % of bits flip: exact string matching usually survives in some
  // copy, pixel-exactness does not.
  EXPECT_LT(r.pixel_match, 1.0);
}

TEST(ScenarioTimeline, RefreshedDelayIsHarmless) {
  // Delay alone (board stays powered, no scrubber) changes nothing — the
  // heart of the paper's remanence claim.
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 3600.0;
  const ScenarioResult r = run_scenario(cfg);
  EXPECT_TRUE(r.full_success());
}

TEST(ScenarioTimeline, DescriptorPathScoresTracked) {
  const ScenarioResult r = run_scenario(small_config());
  EXPECT_DOUBLE_EQ(r.descriptor_pixel_match, 1.0);
  ASSERT_TRUE(r.report.recovered_scores.has_value());
  EXPECT_EQ(r.report.recovered_scores->size(), 10u);
}

class ScrubRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(ScrubRateSweep, RecoveryMonotonicInScrubRate) {
  // Property: more scrub throughput never helps the attacker.
  ScenarioConfig cfg = small_config();
  cfg.attack_delay_s = 1.0;
  cfg.scrubber_bytes_per_s = GetParam();
  const ScenarioResult r = run_scenario(cfg);
  cfg.scrubber_bytes_per_s = GetParam() * 4;
  const ScenarioResult faster = run_scenario(cfg);
  EXPECT_LE(faster.pixel_match, r.pixel_match + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Rates, ScrubRateSweep,
                         ::testing::Values(4096.0, 16384.0, 65536.0));

}  // namespace
}  // namespace msa::attack
