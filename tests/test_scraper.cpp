#include "attack/scraper.h"

#include <gtest/gtest.h>

#include "util/crc32.h"

namespace msa::attack {
namespace {

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  dbg::SystemDebugger dbg{sys, 1001};
  os::Pid victim = 0;
  mem::VirtAddr heap = 0;
  std::vector<std::uint8_t> secret;

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    victim = sys.spawn(1000, {"./resnet50_pt"}, "pts/1");
    heap = sys.sbrk(victim, 3 * mem::kPageSize);
    secret.resize(3 * mem::kPageSize);
    for (std::size_t i = 0; i < secret.size(); ++i) {
      secret[i] = static_cast<std::uint8_t>(i * 131 + 7);
    }
    sys.write_virt(victim, heap, secret);
  }
};

TEST(Scraper, RecoversResidueByteExact) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  f.sys.terminate(f.victim);

  MemoryScraper scraper{f.dbg};
  const ScrapedDump dump = scraper.scrape(t);
  EXPECT_EQ(dump.pid, f.victim);
  EXPECT_EQ(dump.va_start, f.heap);
  EXPECT_EQ(dump.bytes, f.secret);
  EXPECT_EQ(util::crc32(dump.bytes), util::crc32(f.secret));
}

TEST(Scraper, IssuesOneDevmemReadPerWord) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  f.sys.terminate(f.victim);

  MemoryScraper scraper{f.dbg};
  const ScrapedDump dump = scraper.scrape(t);
  EXPECT_EQ(dump.devmem_reads, 3 * mem::kPageSize / 4);
  EXPECT_EQ(dump.pages_unmapped, 0u);
}

TEST(Scraper, WorksWhileVictimStillAlive) {
  // Nothing prevents scraping a live process's physical pages either.
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  MemoryScraper scraper{f.dbg};
  EXPECT_EQ(scraper.scrape(t).bytes, f.secret);
}

TEST(Scraper, UnmappedPagesZeroFilled) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  ResolvedTarget t = resolver.resolve_heap(f.victim);
  t.page_pa[1] = std::nullopt;  // simulate a swapped-out page
  f.sys.terminate(f.victim);

  MemoryScraper scraper{f.dbg};
  const ScrapedDump dump = scraper.scrape(t);
  EXPECT_EQ(dump.pages_unmapped, 1u);
  ASSERT_EQ(dump.bytes.size(), f.secret.size());
  // Page 0 and 2 match; page 1 reads as zeros — offsets preserved.
  for (std::size_t i = 0; i < mem::kPageSize; ++i) {
    EXPECT_EQ(dump.bytes[i], f.secret[i]);
    EXPECT_EQ(dump.bytes[mem::kPageSize + i], 0);
    EXPECT_EQ(dump.bytes[2 * mem::kPageSize + i],
              f.secret[2 * mem::kPageSize + i]);
  }
}

TEST(Scraper, PartialFinalPage) {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  sys.add_user(1001, "attacker");
  dbg::SystemDebugger dbg{sys, 1001};
  const os::Pid pid = sys.spawn(0, {"app"}, "pts/0");
  (void)sys.sbrk(pid, mem::kPageSize + 10);

  AddressResolver resolver{dbg};
  const ResolvedTarget t = resolver.resolve_heap(pid);
  MemoryScraper scraper{dbg};
  const ScrapedDump dump = scraper.scrape(t);
  EXPECT_EQ(dump.bytes.size(), mem::kPageSize + 10);
}

TEST(Scraper, ScrapeFailsUnderZeroOnFree) {
  os::SystemConfig cfg = os::SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  os::PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  dbg::SystemDebugger dbg{sys, 1001};
  const os::Pid pid = sys.spawn(1000, {"app"}, "pts/1");
  const mem::VirtAddr heap = sys.sbrk(pid, mem::kPageSize);
  sys.write_virt32(pid, heap, 0xDEADBEEF);

  AddressResolver resolver{dbg};
  const ResolvedTarget t = resolver.resolve_heap(pid);
  sys.terminate(pid);
  MemoryScraper scraper{dbg};
  const ScrapedDump dump = scraper.scrape(t);
  for (const std::uint8_t b : dump.bytes) EXPECT_EQ(b, 0);
}

TEST(Scraper, PhysicalRangeSweep) {
  Fixture f;
  const auto pa0 =
      f.sys.process(f.victim).page_table().translate(f.heap).value();
  f.sys.terminate(f.victim);

  MemoryScraper scraper{f.dbg};
  const ScrapedDump scan = scraper.scrape_physical_range(pa0, 256);
  ASSERT_EQ(scan.bytes.size(), 256u);
  EXPECT_EQ(scan.devmem_reads, 64u);
  for (std::size_t i = 0; i < 256; ++i) {
    EXPECT_EQ(scan.bytes[i], f.secret[i]);
  }
}

TEST(Scraper, PhysicalRangeUnalignedLength) {
  Fixture f;
  MemoryScraper scraper{f.dbg};
  const ScrapedDump scan = scraper.scrape_physical_range(0x1000, 10);
  EXPECT_EQ(scan.bytes.size(), 10u);
  EXPECT_EQ(scan.devmem_reads, 3u);  // 4+4+2 bytes
}

TEST(Scraper, DeniedByAclPropagates) {
  Fixture f;
  AddressResolver resolver{f.dbg};
  const ResolvedTarget t = resolver.resolve_heap(f.victim);
  dbg::SystemDebugger locked{f.sys, 1001,
                             dbg::DebuggerAcl{dbg::AclMode::kOwnerOnly}};
  MemoryScraper scraper{locked};
  EXPECT_THROW((void)scraper.scrape(t), dbg::DebuggerAccessDenied);
}

}  // namespace
}  // namespace msa::attack
