#include "os/scrubber.h"

#include <gtest/gtest.h>

namespace msa::os {
namespace {

struct Fixture {
  PetaLinuxSystem sys{SystemConfig::test_small()};

  /// Runs a process that dirties `pages` heap pages, then exits.
  void run_and_exit(std::uint64_t pages) {
    const Pid pid = sys.spawn(1000, {"app"}, "pts/1");
    const mem::VirtAddr base = sys.sbrk(pid, pages * mem::kPageSize);
    std::vector<std::uint8_t> junk(pages * mem::kPageSize, 0xEE);
    sys.write_virt(pid, base, junk);
    sys.terminate(pid);
  }
};

TEST(Scrubber, RejectsNonPositiveRate) {
  Fixture f;
  EXPECT_THROW((ScrubberDaemon{f.sys, 0.0}), std::invalid_argument);
  EXPECT_THROW((ScrubberDaemon{f.sys, -1.0}), std::invalid_argument);
}

TEST(Scrubber, CleanBoardHasNoBacklog) {
  Fixture f;
  ScrubberDaemon scrubber{f.sys, 1e6};
  EXPECT_EQ(scrubber.backlog_frames(), 0u);
  EXPECT_EQ(scrubber.run_for(10.0), 0u);
}

TEST(Scrubber, BacklogAppearsAfterTermination) {
  Fixture f;
  f.run_and_exit(8);
  ScrubberDaemon scrubber{f.sys, 1e6};
  EXPECT_EQ(scrubber.backlog_frames(), 8u);
}

TEST(Scrubber, FastScrubberClearsEverything) {
  Fixture f;
  f.run_and_exit(8);
  ScrubberDaemon scrubber{f.sys, 1e9};
  const std::uint64_t scrubbed = scrubber.run_for(1.0);
  EXPECT_EQ(scrubbed, 8u * mem::kPageSize);
  EXPECT_EQ(scrubber.backlog_frames(), 0u);
  EXPECT_EQ(scrubber.stats().frames_scrubbed, 8u);
}

TEST(Scrubber, RateLimitsProgress) {
  Fixture f;
  f.run_and_exit(8);
  // 2 pages per second: after 1 s only 2 frames are clean.
  ScrubberDaemon scrubber{f.sys, 2.0 * mem::kPageSize};
  EXPECT_EQ(scrubber.run_for(1.0), 2u * mem::kPageSize);
  EXPECT_EQ(scrubber.backlog_frames(), 6u);
  EXPECT_EQ(scrubber.run_for(3.0), 6u * mem::kPageSize);
  EXPECT_EQ(scrubber.backlog_frames(), 0u);
}

TEST(Scrubber, ScrubsLowestPfnFirst) {
  Fixture f;
  f.run_and_exit(4);
  const auto dirty_before = f.sys.allocator().dirty_free_frames();
  ASSERT_EQ(dirty_before.size(), 4u);
  ScrubberDaemon scrubber{f.sys, static_cast<double>(mem::kPageSize)};
  (void)scrubber.run_for(1.0);  // exactly one frame
  const auto dirty_after = f.sys.allocator().dirty_free_frames();
  ASSERT_EQ(dirty_after.size(), 3u);
  EXPECT_EQ(dirty_after.front(), dirty_before[1]);  // lowest PFN gone
}

TEST(Scrubber, ScrubbedFrameReadsZero) {
  Fixture f;
  f.run_and_exit(1);
  const auto dirty = f.sys.allocator().dirty_free_frames();
  ASSERT_EQ(dirty.size(), 1u);
  const dram::PhysAddr pa = mem::PageFrameAllocator::frame_to_phys(dirty[0]);
  EXPECT_TRUE(f.sys.dram().any_nonzero(pa, mem::kPageSize));
  ScrubberDaemon scrubber{f.sys, 1e9};
  (void)scrubber.run_for(1.0);
  EXPECT_FALSE(f.sys.dram().any_nonzero(pa, mem::kPageSize));
}

TEST(Scrubber, ZeroOrNegativeTimeIsNoop) {
  Fixture f;
  f.run_and_exit(2);
  ScrubberDaemon scrubber{f.sys, 1e9};
  EXPECT_EQ(scrubber.run_for(0.0), 0u);
  EXPECT_EQ(scrubber.run_for(-1.0), 0u);
  EXPECT_EQ(scrubber.backlog_frames(), 2u);
}

TEST(Scrubber, FractionalBudgetAccumulatesWithinBurst) {
  Fixture f;
  f.run_and_exit(2);
  // Half a page per second: 1 s -> nothing, second call carries over.
  ScrubberDaemon scrubber{f.sys, mem::kPageSize / 2.0};
  EXPECT_EQ(scrubber.run_for(1.0), 0u);
  EXPECT_EQ(scrubber.run_for(1.0), mem::kPageSize);
}

TEST(Scrubber, StatsAccumulateAcrossRuns) {
  Fixture f;
  f.run_and_exit(3);
  ScrubberDaemon scrubber{f.sys, static_cast<double>(mem::kPageSize)};
  (void)scrubber.run_for(1.0);
  (void)scrubber.run_for(2.0);
  EXPECT_EQ(scrubber.stats().frames_scrubbed, 3u);
  EXPECT_EQ(scrubber.stats().bytes_scrubbed, 3u * mem::kPageSize);
  EXPECT_GT(scrubber.stats().busy_seconds, 0.0);
}

TEST(Scrubber, NewTerminationRefillsBacklog) {
  Fixture f;
  f.run_and_exit(2);
  ScrubberDaemon scrubber{f.sys, 1e9};
  (void)scrubber.run_for(1.0);
  EXPECT_EQ(scrubber.backlog_frames(), 0u);
  f.run_and_exit(5);
  EXPECT_EQ(scrubber.backlog_frames(), 5u);
}

}  // namespace
}  // namespace msa::os
