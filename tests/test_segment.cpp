// Segment-tier tests: the sorted block-indexed format itself (round
// trip, index behavior, damage rejection), compaction identity at scale
// (flat vs segmented views byte-identical, tiered shapes included), the
// indexed read path actually touching only a cell's blocks, and the
// machinery around it (tailer across a compaction, resume on a
// segmented store).
#include "persist/segment.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "campaign/axis.h"
#include "campaign/stats.h"
#include "obs/metrics.h"
#include "persist/campaign_store.h"
#include "persist/manifest.h"
#include "persist/store_codec.h"
#include "persist/store_reader.h"

namespace msa::persist {
namespace {

std::string tmp_path(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "msa_segment_tests";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  remove_segment_files(path.string());
  return path.string();
}

/// Synthetic single-axis sweep identity: `cells` values of "delay_s".
StoreManifest synth_manifest(std::uint64_t cells,
                             std::uint32_t trials_per_cell) {
  StoreManifest m;
  m.grid_fingerprint = 0x5eedf00du;
  m.grid_cells = cells;
  m.trials_per_cell = trials_per_cell;
  m.trial_salt = 42;
  campaign::AxisSpec axis;
  axis.name = "delay_s";
  axis.kind = campaign::AxisKind::kDouble;
  for (std::uint64_t i = 0; i < cells; ++i) {
    axis.values.push_back(campaign::AxisValue::of_number(double(i)));
  }
  m.axes = {std::move(axis)};
  return m;
}

std::vector<campaign::AxisCoordinate> synth_coords(std::uint64_t index) {
  return {{"delay_s", campaign::AxisValue::of_number(double(index))}};
}

TrialRecord synth_trial(std::uint64_t cell, std::uint32_t trial) {
  TrialRecord t;
  t.cell_index = cell;
  t.trial = trial;
  t.denied = (cell + trial) % 3 == 0;
  t.model_identified = trial % 2 == 0;
  t.pixel_match = 0.25 + 0.5 * double(trial % 4) / 4.0;
  t.psnr = 20.0 + double(cell % 50);
  t.descriptor_pixel_match = 0.125 * double(trial % 8);
  if (t.denied) t.denial_reason = "firewall";
  return t;
}

campaign::CellStats synth_stats(std::uint64_t index,
                                std::uint32_t trials_per_cell) {
  campaign::CellStats s;
  s.index = index;
  s.coords = synth_coords(index);
  s.trials = trials_per_cell;
  for (std::uint32_t t = 0; t < trials_per_cell; ++t) {
    const TrialRecord trial = synth_trial(index, t);
    if (trial.denied) {
      ++s.denials;
      if (s.first_denial_reason.empty()) s.first_denial_reason = "firewall";
    }
    if (trial.model_identified) ++s.model_identified;
    s.mean_pixel_match += trial.pixel_match;
    s.mean_psnr_db += trial.psnr;
    s.mean_descriptor_pixel_match += trial.descriptor_pixel_match;
  }
  s.mean_pixel_match /= trials_per_cell;
  s.mean_psnr_db /= trials_per_cell;
  s.mean_descriptor_pixel_match /= trials_per_cell;
  return s;
}

/// Streams `cells` x `trials_per_cell` synthetic records through a real
/// CampaignStore writer; `duplicate_every` > 0 re-appends every Nth
/// cell's trials (the bit-identical duplicates a resume legally leaves).
void write_synth_store(const std::string& path, std::uint64_t cells,
                       std::uint32_t trials_per_cell,
                       std::uint64_t duplicate_every = 0) {
  CampaignStore store{path, synth_manifest(cells, trials_per_cell),
                      CampaignStore::Mode::kCreate};
  for (std::uint64_t c = 0; c < cells; ++c) {
    for (std::uint32_t t = 0; t < trials_per_cell; ++t) {
      store.append_trial(synth_trial(c, t));
    }
    if (duplicate_every != 0 && c % duplicate_every == 0) {
      for (std::uint32_t t = 0; t < trials_per_cell; ++t) {
        store.append_trial(synth_trial(c, t));
      }
    }
    store.complete_cell(synth_stats(c, trials_per_cell));
  }
}

std::vector<SegmentCell> synth_segment_cells(std::uint64_t cells,
                                             std::uint32_t trials_per_cell) {
  std::vector<SegmentCell> out;
  for (std::uint64_t c = 0; c < cells; ++c) {
    SegmentCell cell;
    cell.stats = synth_stats(c, trials_per_cell);
    for (std::uint32_t t = 0; t < trials_per_cell; ++t) {
      cell.trials.push_back(synth_trial(c, t));
    }
    out.push_back(std::move(cell));
  }
  return out;
}

/// The three stats renderings at once — "byte-identical" means all of
/// text, CSV and JSON.
std::string stats_bytes(const std::string& path,
                        const CellFilter& filter = {}) {
  const campaign::StatsReport report =
      campaign::analyze_sweep(load_sweep({path}, filter));
  return report.to_text() + "\x1e" + report.to_csv() + "\x1e" +
         report.to_json();
}

TEST(Segment, RoundTripPreservesEverything) {
  const std::string path = tmp_path("roundtrip.seg");
  const StoreManifest identity = synth_manifest(10, 5);
  const SegmentInfo written =
      write_segment(path, 2, 7, identity, synth_segment_cells(10, 5));
  EXPECT_EQ(written.trial_count, 50u);
  EXPECT_EQ(written.cell_count, 10u);

  const SegmentReader reader{path};
  EXPECT_EQ(reader.info().level, 2u);
  EXPECT_EQ(reader.info().sequence, 7u);
  EXPECT_EQ(reader.info().trial_count, 50u);
  EXPECT_EQ(reader.info().cell_count, 10u);
  EXPECT_EQ(reader.info().identity, identity);

  const std::vector<campaign::CellStats> cells = reader.cells();
  ASSERT_EQ(cells.size(), 10u);
  for (std::uint64_t c = 0; c < 10; ++c) {
    // Key order == numeric axis order for a single double axis.
    EXPECT_EQ(cells[c].index, c);
    EXPECT_EQ(cells[c].coords, synth_coords(c));
    const std::vector<TrialRecord> trials =
        reader.trials_for_key(encode_cell_key(synth_coords(c)));
    ASSERT_EQ(trials.size(), 5u);
    for (std::uint32_t t = 0; t < 5; ++t) {
      EXPECT_EQ(trials[t].trial, t);
      EXPECT_EQ(trials[t].cell_index, c);
      EXPECT_EQ(trials[t].psnr, synth_trial(c, t).psnr);
    }
  }
  // A key the segment does not hold reads back empty, not an error.
  EXPECT_TRUE(reader.trials_for_key(encode_cell_key(synth_coords(99))).empty());

  std::size_t streamed = 0;
  reader.for_each_group([&](const SegmentReader::TrialGroup& group) {
    streamed += group.trials.size();
  });
  EXPECT_EQ(streamed, 50u);
}

TEST(Segment, SingleCellQueryReadsOneBlockOfMany) {
  const std::string path = tmp_path("blocks.seg");
  SegmentWriteOptions options;
  options.block_bytes = 512;  // force many small blocks
  write_segment(path, 0, 1, synth_manifest(64, 8), synth_segment_cells(64, 8),
                options);

  const SegmentReader reader{path};
  ASSERT_GT(reader.trial_block_count(), 8u);

  obs::Counter& blocks = obs::counter("persist.segment_blocks_read");
  obs::Counter& bytes = obs::counter("persist.segment_bytes_read");
  const std::uint64_t blocks_before = blocks.value();
  const std::uint64_t bytes_before = bytes.value();
  const std::vector<TrialRecord> trials =
      reader.trials_for_key(encode_cell_key(synth_coords(37)));
  ASSERT_EQ(trials.size(), 8u);
  EXPECT_EQ(blocks.value() - blocks_before, 1u);
  // One block out of >8: well under a quarter of the file.
  EXPECT_LT(bytes.value() - bytes_before, reader.file_bytes() / 4);
}

TEST(Segment, TruncationAnywhereIsRejectedNotMisread) {
  const std::string path = tmp_path("torn.seg");
  SegmentWriteOptions options;
  options.block_bytes = 512;
  write_segment(path, 0, 1, synth_manifest(32, 6), synth_segment_cells(32, 6),
                options);
  const std::uint64_t size = std::filesystem::file_size(path);

  // Deterministic sample of truncation points across the whole file —
  // mid-block, mid-index, mid-footer — plus the exact footer boundary.
  std::mt19937 rng{0xc0ffee};
  std::vector<std::uint64_t> cuts{0, 1, size - 1, size - kSegmentFooterFrameBytes,
                                  size - kSegmentFooterFrameBytes - 1};
  std::uniform_int_distribution<std::uint64_t> dist{2, size - 2};
  for (int i = 0; i < 40; ++i) cuts.push_back(dist(rng));

  const std::string torn = tmp_path("torn_cut.seg");
  for (const std::uint64_t cut : cuts) {
    std::filesystem::copy_file(
        path, torn, std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(torn, cut);
    try {
      const SegmentReader reader{torn};
      // The constructor only validates footer + index; force every
      // block read too. Any damage must throw — never partial data.
      (void)reader.cells();
      reader.for_each_group([](const SegmentReader::TrialGroup&) {});
      FAIL() << "truncation at " << cut << " of " << size
             << " was not detected";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string{e.what()}.find("segment"), std::string::npos)
          << "truncation at " << cut << " threw an unnamed error: "
          << e.what();
    }
  }
}

TEST(Segment, DamagedLevelsSidecarIsRejectedByName) {
  const std::string path = tmp_path("sidecar.store");
  write_synth_store(path, 16, 4);
  ASSERT_GT(compact_store(path).segments_live, 0u);

  const std::string sidecar = levels_manifest_path(path);
  const std::uint64_t size = std::filesystem::file_size(sidecar);
  std::filesystem::resize_file(sidecar, size / 2);
  try {
    (void)read_levels_manifest(path);
    FAIL() << "torn sidecar was not detected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("levels manifest"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW((void)StoreReader{path}, std::runtime_error);
}

TEST(Segment, CompactionKeepsStatsByteIdenticalAtScale) {
  const std::string path = tmp_path("identity.store");
  write_synth_store(path, 300, 30, /*duplicate_every=*/2);
  const std::string flat = stats_bytes(path);
  const std::string flat_filtered =
      stats_bytes(path, {{CellFilter::parse_clause("delay_s=37,130,299")}});

  // Default compaction: one sorted segment; the duplicated trials drop,
  // so at this scale the store must actually shrink.
  const CompactionResult result = compact_store(path);
  EXPECT_EQ(result.trials_dropped, 150u * 30u);  // every other cell doubled
  EXPECT_EQ(result.segments_live, 1u);
  EXPECT_LT(result.bytes_after, result.bytes_before);

  EXPECT_EQ(stats_bytes(path), flat);
  EXPECT_EQ(stats_bytes(path, {{CellFilter::parse_clause("delay_s=37,130,299")}}),
            flat_filtered);

  // Re-compacting is byte-stable.
  const CompactionResult again = compact_store(path);
  EXPECT_EQ(again.trials_dropped, 0u);
  EXPECT_EQ(again.bytes_after, again.bytes_before);
  EXPECT_EQ(again.generation, result.generation);
  EXPECT_EQ(stats_bytes(path), flat);
}

TEST(Segment, TieredCompactionKeepsMultipleSegmentsAndIdentity) {
  const std::string path = tmp_path("tiered.store");
  const StoreManifest manifest = synth_manifest(120, 10);
  {
    CampaignStore store{path, manifest, CampaignStore::Mode::kCreate};
    for (std::uint64_t c = 0; c < 60; ++c) {
      for (std::uint32_t t = 0; t < 10; ++t) {
        store.append_trial(synth_trial(c, t));
      }
      store.complete_cell(synth_stats(c, 10));
    }
  }
  // Generous cap: the first flush stays its own level-0 segment.
  CompactOptions tiered;
  tiered.max_level_bytes = 64 * 1024 * 1024;
  EXPECT_EQ(compact_store(path, tiered).segments_live, 1u);

  {  // second half appends through a resume, then compacts again
    CampaignStore store{path, manifest, CampaignStore::Mode::kResume};
    EXPECT_EQ(store.completed_count(), 60u);  // seeded from the segment
    for (std::uint64_t c = 60; c < 120; ++c) {
      for (std::uint32_t t = 0; t < 10; ++t) {
        store.append_trial(synth_trial(c, t));
      }
      store.complete_cell(synth_stats(c, 10));
    }
  }
  const CompactionResult second = compact_store(path, tiered);
  EXPECT_EQ(second.segments_live, 2u);  // under the cap: no merge

  // Two live segments + trimmed log must read identically to the same
  // 120 cells written flat in one go.
  const std::string flat = tmp_path("tiered_flat.store");
  write_synth_store(flat, 120, 10);
  EXPECT_EQ(stats_bytes(path), stats_bytes(flat));
  const CellFilter filter{{CellFilter::parse_clause("delay_s=5,64,119")}};
  EXPECT_EQ(stats_bytes(path, filter), stats_bytes(flat, filter));

  // A small cap then merges everything down to one deeper segment.
  CompactOptions tight;
  tight.max_level_bytes = 1024;
  EXPECT_EQ(compact_store(path, tight).segments_live, 1u);
  EXPECT_EQ(stats_bytes(path), stats_bytes(flat));
}

TEST(Segment, IndexedCellReadTouchesFractionOfBigStore) {
  // The acceptance-scale store: 2000 cells x 50 trials = 100k trials.
  const std::string path = tmp_path("big.store");
  write_synth_store(path, 2000, 50);
  ASSERT_EQ(compact_store(path).segments_live, 1u);

  const StoreReader reader{path};
  ASSERT_GE(reader.store_bytes(), 1u << 21);  // sanity: multi-MB store

  obs::Counter& bytes = obs::counter("persist.segment_bytes_read");
  const std::uint64_t before = bytes.value();
  const auto cell = reader.read_cell(synth_coords(1234));
  ASSERT_TRUE(cell.has_value());
  EXPECT_EQ(cell->stats.index, 1234u);
  ASSERT_EQ(cell->trials.size(), 50u);
  const std::uint64_t delta = bytes.value() - before;
  // One cell's blocks, not the store: under 5% of the file. (cells()
  // scans the aggregate blocks too, which dominate this delta — trial
  // data, the bulk of the store, stays untouched.)
  EXPECT_LT(delta * 20, reader.store_bytes());
}

TEST(Segment, TailerCountsSurviveCompaction) {
  const std::string path = tmp_path("tailer.store");
  write_synth_store(path, 50, 6);

  StoreTailer tailer{path};
  const StoreTailer::Counts before = tailer.poll();
  EXPECT_EQ(before.trials, 300u);
  EXPECT_EQ(before.cells, 50u);

  ASSERT_EQ(compact_store(path).segments_live, 1u);
  const StoreTailer::Counts after = tailer.poll();  // generation rebase
  EXPECT_EQ(after.trials, 300u);
  EXPECT_EQ(after.cells, 50u);

  // New appends on top of the trimmed log keep counting incrementally.
  {
    CampaignStore store{path, synth_manifest(50, 6),
                        CampaignStore::Mode::kResume};
    EXPECT_EQ(store.completed_count(), 50u);
  }
  const StoreTailer::Counts resumed = tailer.poll();
  EXPECT_EQ(resumed.trials, 300u);
  EXPECT_EQ(resumed.cells, 50u);
}

TEST(Segment, FreshCreateRefusesStaleSidecar) {
  const std::string path = tmp_path("stale.store");
  write_synth_store(path, 8, 2);
  ASSERT_EQ(compact_store(path).segments_live, 1u);
  std::filesystem::remove(path);  // log gone, sidecar + segment remain

  EXPECT_THROW((CampaignStore{path, synth_manifest(8, 2),
                              CampaignStore::Mode::kCreateOrResume}),
               std::runtime_error);
  remove_segment_files(path);  // the documented operator remedy
  CampaignStore store{path, synth_manifest(8, 2),
                      CampaignStore::Mode::kCreateOrResume};
  EXPECT_EQ(store.completed_count(), 0u);
}

}  // namespace
}  // namespace msa::persist
