#include "attack/signature_db.h"

#include <gtest/gtest.h>

#include "vitis/dpu_runner.h"
#include "vitis/model_zoo.h"

namespace msa::attack {
namespace {

std::vector<std::uint8_t> residue_for(const std::string& model_name) {
  // Realistic residue: the staged strings area plus the serialized model,
  // exactly what the DpuRunner leaves in the heap.
  const vitis::XModel m = vitis::make_zoo_model(model_name);
  std::vector<std::uint8_t> residue(64, 0);  // heap metadata padding
  const auto strings = vitis::DpuRunner::staged_strings(m);
  residue.insert(residue.end(), strings.begin(), strings.end());
  const auto blob = m.serialize();
  residue.insert(residue.end(), blob.begin(), blob.end());
  return residue;
}

TEST(SignatureDb, ZooDbCoversAllModels) {
  EXPECT_EQ(SignatureDb::for_zoo().size(), vitis::zoo_model_names().size());
}

TEST(SignatureDb, IdentifiesCorrectModelFromResidue) {
  const SignatureDb db = SignatureDb::for_zoo();
  for (const auto& name : vitis::zoo_model_names()) {
    const auto residue = residue_for(name);
    EXPECT_EQ(db.identify(residue).value_or("<none>"), name) << name;
  }
}

TEST(SignatureDb, EmptyResidueNoMatch) {
  const SignatureDb db = SignatureDb::for_zoo();
  std::vector<std::uint8_t> zeros(4096, 0);
  EXPECT_FALSE(db.identify(zeros).has_value());
  EXPECT_TRUE(db.scan(zeros).empty());
}

TEST(SignatureDb, ScanRanksByDistinctNeedles) {
  SignatureDb db;
  db.add(Signature{"model_a", {"alpha", "beta"}});
  db.add(Signature{"model_b", {"alpha"}});
  const std::string text = "alpha beta alpha";
  const std::vector<std::uint8_t> bytes{text.begin(), text.end()};
  const auto matches = db.scan(bytes);
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].model_name, "model_a");
  EXPECT_EQ(matches[0].distinct_needles, 2u);
  EXPECT_EQ(matches[0].hits, 3u);
  EXPECT_EQ(matches[1].model_name, "model_b");
}

TEST(SignatureDb, OffsetsAreSortedAndCorrect) {
  SignatureDb db;
  db.add(Signature{"m", {"xy"}});
  const std::string text = "..xy....xy";
  const std::vector<std::uint8_t> bytes{text.begin(), text.end()};
  const auto matches = db.scan(bytes);
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].offsets, (std::vector<std::size_t>{2, 8}));
}

TEST(SignatureDb, SubstringNamesDontConfuse) {
  // "resnet50_pt" residue must not be identified as squeezenet etc.
  const SignatureDb db = SignatureDb::for_zoo();
  const auto residue = residue_for("resnet50_pt");
  const auto matches = db.scan(residue);
  ASSERT_FALSE(matches.empty());
  EXPECT_EQ(matches[0].model_name, "resnet50_pt");
  for (std::size_t i = 1; i < matches.size(); ++i) {
    EXPECT_LT(matches[i].distinct_needles, matches[0].distinct_needles);
  }
}

TEST(IdentifyDeep, ParsesFullContainerFromResidue) {
  const auto residue = residue_for("yolov3_tiny_tf");
  const auto deep = SignatureDb::identify_deep(residue);
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(deep->model_name, "yolov3_tiny_tf");
  EXPECT_EQ(deep->param_bytes,
            vitis::make_zoo_model("yolov3_tiny_tf").param_bytes());
  EXPECT_GT(deep->container_offset, 0u);
}

TEST(IdentifyDeep, CorruptedContainerSkipped) {
  auto residue = residue_for("resnet50_pt");
  // Find the magic and damage a byte well inside the container.
  const auto deep_before = SignatureDb::identify_deep(residue);
  ASSERT_TRUE(deep_before.has_value());
  residue[deep_before->container_offset + 40] ^= 0xFF;
  EXPECT_FALSE(SignatureDb::identify_deep(residue).has_value());
}

TEST(IdentifyDeep, NoMagicNoMatch) {
  std::vector<std::uint8_t> junk(10000, 0x5A);
  EXPECT_FALSE(SignatureDb::identify_deep(junk).has_value());
}

TEST(IdentifyDeep, TruncatedContainerRejected) {
  auto residue = residue_for("resnet50_pt");
  const auto deep = SignatureDb::identify_deep(residue);
  ASSERT_TRUE(deep.has_value());
  residue.resize(deep->container_offset + 64);  // cut mid-container
  EXPECT_FALSE(SignatureDb::identify_deep(residue).has_value());
}

class SignatureSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(SignatureSweep, StringAndDeepIdentificationAgree) {
  const SignatureDb db = SignatureDb::for_zoo();
  const auto residue = residue_for(GetParam());
  const auto shallow = db.identify(residue);
  const auto deep = SignatureDb::identify_deep(residue);
  ASSERT_TRUE(shallow.has_value());
  ASSERT_TRUE(deep.has_value());
  EXPECT_EQ(*shallow, deep->model_name);
}

INSTANTIATE_TEST_SUITE_P(AllModels, SignatureSweep,
                         ::testing::ValuesIn(vitis::zoo_model_names()));

}  // namespace
}  // namespace msa::attack
