// Stats-engine tests: Wilson intervals against published values,
// nearest-rank percentiles, and analyze_sweep over a real store's trial
// stream (cells, marginals, orphan exclusion).
#include "campaign/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <stdexcept>

#include "campaign/grid.h"
#include "campaign/runner.h"
#include "persist/campaign_store.h"

namespace msa::campaign {
namespace {

using persist::CampaignStore;
using persist::StoreManifest;
using persist::SweepData;
using persist::TrialRecord;

TEST(WilsonInterval, MatchesKnownValues) {
  // 8/10 at 95%: the standard worked example — Wilson gives
  // approximately [0.490, 0.943].
  const WilsonInterval ci = wilson_interval(8, 10);
  EXPECT_NEAR(ci.low, 0.4902, 5e-4);
  EXPECT_NEAR(ci.high, 0.9433, 5e-4);

  // 0/5 and 5/5: one-sided but never outside [0, 1], never degenerate
  // like the normal approximation (0 +/- 0).
  const WilsonInterval none = wilson_interval(0, 5);
  EXPECT_EQ(none.low, 0.0);
  EXPECT_GT(none.high, 0.0);
  EXPECT_LT(none.high, 0.55);
  const WilsonInterval all = wilson_interval(5, 5);
  EXPECT_EQ(all.high, 1.0);
  EXPECT_LT(all.low, 1.0);
  EXPECT_GT(all.low, 0.45);
  // Symmetry of the complementary counts.
  EXPECT_NEAR(all.low, 1.0 - none.high, 1e-12);

  // The single-trial extremes stay sane too: 0/1 and 1/1 give wide but
  // proper subintervals of [0, 1], never the degenerate point the
  // normal approximation collapses to.
  const WilsonInterval zero_of_one = wilson_interval(0, 1);
  EXPECT_EQ(zero_of_one.low, 0.0);
  EXPECT_GT(zero_of_one.high, 0.5);
  EXPECT_LT(zero_of_one.high, 1.0);
  const WilsonInterval one_of_one = wilson_interval(1, 1);
  EXPECT_EQ(one_of_one.high, 1.0);
  EXPECT_LT(one_of_one.low, 0.5);
  EXPECT_GT(one_of_one.low, 0.0);

  // No data: the no-information interval.
  const WilsonInterval empty = wilson_interval(0, 0);
  EXPECT_EQ(empty.low, 0.0);
  EXPECT_EQ(empty.high, 1.0);
}

TEST(Percentile, NearestRank) {
  const std::vector<double> v{1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0};
  EXPECT_EQ(percentile_sorted(v, 0.0), 1.0);
  EXPECT_EQ(percentile_sorted(v, 50.0), 5.0);   // ceil(0.5*10) = 5th
  EXPECT_EQ(percentile_sorted(v, 90.0), 9.0);
  EXPECT_EQ(percentile_sorted(v, 99.0), 10.0);  // ceil(0.99*10) = 10th
  EXPECT_EQ(percentile_sorted(v, 100.0), 10.0);

  const std::vector<double> one{42.0};
  EXPECT_EQ(percentile_sorted(one, 50.0), 42.0);
  EXPECT_EQ(percentile_sorted(one, 99.0), 42.0);
  EXPECT_THROW((void)percentile_sorted({}, 50.0), std::invalid_argument);
}

TEST(AnalyzeSweep, CellsAndMarginalsFromRealStore) {
  attack::ScenarioConfig cfg;
  cfg.system = os::SystemConfig::test_small();
  cfg.image_width = 48;
  cfg.image_height = 48;
  GridBuilder grid{cfg};
  grid.defenses({"baseline", "zero_on_free"}).attack_delays_s({0.0, 5.0});

  CampaignOptions options;
  options.threads = 2;
  options.trials_per_cell = 3;

  StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;
  manifest.axes = grid.axis_schema();

  const auto dir = std::filesystem::temp_directory_path() / "msa_stats_tests";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "analyze.store").string();
  std::filesystem::remove(path);
  {
    CampaignRunner runner{options};
    CampaignStore store{path, manifest, CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }

  const SweepData data = persist::load_sweep({path});
  const StatsReport report = analyze_sweep(data);

  ASSERT_EQ(report.cells.size(), 4u);
  EXPECT_EQ(report.trials_analyzed, 12u);
  EXPECT_EQ(report.orphan_trials, 0u);
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const CellDistribution& c = report.cells[i];
    const CellStats& stored = data.cells[i];
    EXPECT_EQ(c.index, stored.index);
    EXPECT_EQ(c.trials, 3u);
    EXPECT_EQ(c.successes, stored.full_successes);
    EXPECT_EQ(c.denials, stored.denials);
    // Percentiles are order statistics of the same sample the mean came
    // from: p50 <= p90 <= p99, all within [min, max] around the mean.
    EXPECT_LE(c.p50_psnr, c.p90_psnr);
    EXPECT_LE(c.p90_psnr, c.p99_psnr);
    EXPECT_LE(c.success_ci.low, c.success_rate);
    EXPECT_GE(c.success_ci.high, c.success_rate);
  }

  // Marginals: axis blocks in fixed order, values in grid order, trial
  // counts conserved (every trial lands in exactly one value per axis).
  ASSERT_EQ(report.marginals.size(), 2u + 1u + 2u + 1u);
  EXPECT_EQ(report.marginals[0].axis, "defense");
  EXPECT_EQ(report.marginals[0].value, "baseline");
  EXPECT_EQ(report.marginals[1].value, "zero_on_free");
  for (const AxisMarginal& m : report.marginals) {
    if (m.axis == "defense") {
      EXPECT_EQ(m.trials, 6u);
    } else if (m.axis == "model") {
      EXPECT_EQ(m.trials, 12u);
    } else if (m.axis == "delay_s") {
      EXPECT_EQ(m.trials, 6u);
    } else if (m.axis == "scrubber_Bps") {
      EXPECT_EQ(m.trials, 12u);
    }
  }

  // Deterministic, non-empty rendering.
  const std::string text = report.to_text();
  EXPECT_NE(text.find("per-cell distributions"), std::string::npos);
  EXPECT_NE(text.find("per-axis marginals"), std::string::npos);
  EXPECT_EQ(text, analyze_sweep(data).to_text());
}

TEST(AnalyzeSweep, OrphanTrialsOfIncompleteCellsExcluded) {
  // Synthesize: one completed cell with 2 trials, plus a trial of a cell
  // that never completed (a killed worker's leftovers).
  SweepData data;
  data.manifest.grid_cells = 4;
  CellStats cell;
  cell.index = 1;
  cell.coords = {{"defense", AxisValue::of_string("baseline")},
                 {"model", AxisValue::of_string("m")}};
  cell.trials = 2;
  cell.full_successes = 1;
  data.cells.push_back(cell);
  TrialRecord t;
  t.cell_index = 1;
  t.trial = 0;
  t.model_identified = true;
  t.pixel_match = 1.0;
  t.psnr = 99.0;
  data.trials.push_back(t);
  t.trial = 1;
  t.model_identified = false;
  t.pixel_match = 0.3;
  t.psnr = 12.5;
  data.trials.push_back(t);
  t.cell_index = 3;  // orphan: no completed cell 3
  t.trial = 0;
  data.trials.push_back(t);

  const StatsReport report = analyze_sweep(data);
  EXPECT_EQ(report.trials_analyzed, 2u);
  EXPECT_EQ(report.orphan_trials, 1u);
  ASSERT_EQ(report.cells.size(), 1u);
  EXPECT_EQ(report.cells[0].successes, 1u);
  EXPECT_EQ(report.cells[0].p50_psnr, 12.5);
  EXPECT_EQ(report.cells[0].p99_psnr, 99.0);

  // A completed cell with no trial stream at all is a broken store.
  data.trials.clear();
  EXPECT_THROW((void)analyze_sweep(data), std::runtime_error);
}

TEST(AnalyzeSweep, SingleTrialCellCollapsesPercentiles) {
  SweepData data;
  data.manifest.grid_cells = 1;
  CellStats cell;
  cell.index = 0;
  cell.coords = {{"defense", AxisValue::of_string("baseline")},
                 {"model", AxisValue::of_string("m")}};
  cell.trials = 1;
  data.cells.push_back(cell);
  TrialRecord t;
  t.cell_index = 0;
  t.trial = 0;
  t.model_identified = true;
  t.pixel_match = 1.0;
  t.psnr = 42.25;
  data.trials.push_back(t);

  const StatsReport report = analyze_sweep(data);
  ASSERT_EQ(report.cells.size(), 1u);
  const CellDistribution& c = report.cells[0];
  EXPECT_EQ(c.trials, 1u);
  // One sample: every order statistic IS that sample.
  EXPECT_EQ(c.p50_psnr, 42.25);
  EXPECT_EQ(c.p90_psnr, 42.25);
  EXPECT_EQ(c.p99_psnr, 42.25);
  EXPECT_EQ(c.successes, 1u);
  EXPECT_EQ(c.success_rate, 1.0);
  EXPECT_EQ(c.success_ci.high, 1.0);
  EXPECT_GT(c.success_ci.low, 0.0);
}

TEST(AnalyzeSweep, OrphanOnlyStoreYieldsEmptyReport) {
  // Every trial belongs to a never-completed cell (a store whose worker
  // was killed before its first complete_cell): nothing to analyze, but
  // the orphans are counted and every emitter still renders.
  SweepData data;
  data.manifest.grid_cells = 8;
  TrialRecord t;
  t.cell_index = 2;
  t.trial = 0;
  t.psnr = 10.0;
  data.trials.push_back(t);
  t.cell_index = 5;
  data.trials.push_back(t);

  const StatsReport report = analyze_sweep(data);
  EXPECT_TRUE(report.cells.empty());
  EXPECT_TRUE(report.marginals.empty());
  EXPECT_EQ(report.trials_analyzed, 0u);
  EXPECT_EQ(report.orphan_trials, 2u);
  EXPECT_NE(report.to_text().find("0 cells, 0 trials, 2 orphan trials"),
            std::string::npos);
  EXPECT_NE(report.to_csv().find("section"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"orphan_trials\":2"), std::string::npos);
  EXPECT_NE(report.to_json().find("\"cells\":[]"), std::string::npos);
}

TEST(StatsReport, CsvAndJsonAreByteStableAndStrict) {
  SweepData data;
  data.manifest.grid_cells = 2;
  for (std::uint64_t i = 0; i < 2; ++i) {
    CellStats cell;
    cell.index = i;
    cell.coords = {
        // The comma-and-CR label exercises CSV quoting end to end.
        {"defense",
         AxisValue::of_string(i == 0 ? "baseline" : "zero,on\rfree")},
        {"model", AxisValue::of_string("m")},
        {"delay_s", AxisValue::of_number(5.0 * static_cast<double>(i))}};
    cell.trials = 2;
    data.cells.push_back(cell);
    for (std::uint32_t trial = 0; trial < 2; ++trial) {
      TrialRecord t;
      t.cell_index = i;
      t.trial = trial;
      t.model_identified = i == 0;
      t.pixel_match = i == 0 ? 1.0 : 0.25;
      t.psnr = 10.0 + static_cast<double>(trial);
      data.trials.push_back(t);
    }
  }

  const StatsReport report = analyze_sweep(data);
  const std::string csv = report.to_csv();
  EXPECT_EQ(csv, analyze_sweep(data).to_csv());
  // The axis value with a comma and CR must arrive quoted.
  EXPECT_NE(csv.find("\"zero,on\rfree\""), std::string::npos);
  // Cell rows and marginal rows share one strict header.
  EXPECT_EQ(csv.rfind("section,index,defense,model,", 0), 0u);
  EXPECT_NE(csv.find("\nmarginal,"), std::string::npos);

  const std::string json = report.to_json();
  EXPECT_EQ(json, analyze_sweep(data).to_json());
  EXPECT_EQ(json.rfind("{\"trials_analyzed\":4,\"orphan_trials\":0,", 0), 0u);
  EXPECT_NE(json.find("\"marginals\":["), std::string::npos);
  // The CR inside the defense label is escaped, never raw, in JSON.
  EXPECT_EQ(json.find('\r'), std::string::npos);
  EXPECT_NE(json.find("zero,on\\u000dfree"), std::string::npos);
}

}  // namespace
}  // namespace msa::campaign
