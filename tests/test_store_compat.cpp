// Store format-compat tests against a CHECKED-IN v1 store (written by
// the pre-axis-schema binary: v1 manifest, four named axis fields per
// cell record). The contract: v2 readers load it, synthesize the legacy
// four-axis schema, reproduce the pre-refactor stats output byte for
// byte, diff it against a freshly-run v2 store with every delta exactly
// zero, and compaction upgrades it in place to the current format.
//
// The fixture (tests/data/golden_v1_4axis.store and the three stats
// goldens next to it) was produced by the PR-5 binary with:
//   campaign_sweep --trials 2 --threads 2 --defenses baseline,zero_on_free
//                  --models resnet50_pt --delays 0,5 --scrubbers 0
//                  --store golden_v1_4axis.store
// over the default 96x96 base scenario.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>

#include "campaign/compare.h"
#include "campaign/grid.h"
#include "campaign/runner.h"
#include "campaign/stats.h"
#include "persist/campaign_store.h"
#include "persist/manifest.h"

namespace msa::persist {
namespace {

std::string data_path(const char* name) {
  return std::string{MSA_TEST_DATA_DIR} + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.is_open()) << path;
  return {std::istreambuf_iterator<char>{in}, {}};
}

std::string tmp_copy_of_golden(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() / "msa_compat_tests";
  std::filesystem::create_directories(dir);
  const auto path = dir / name;
  std::filesystem::remove(path);
  // A previous run may have compacted this copy: drop its levels
  // sidecar and segments, or the fresh flat copy would mismatch them.
  remove_segment_files(path.string());
  std::filesystem::copy_file(data_path("golden_v1_4axis.store"), path);
  return path.string();
}

/// The grid the golden store was swept over (the CLI defaults of the
/// binary that wrote it, narrowed to 4 cells).
campaign::GridBuilder golden_grid() {
  attack::ScenarioConfig base;
  base.image_width = 96;
  base.image_height = 96;
  campaign::GridBuilder grid{base};
  grid.defenses({"baseline", "zero_on_free"})
      .models({"resnet50_pt"})
      .attack_delays_s({0.0, 5.0})
      .scrubber_rates({0.0});
  return grid;
}

TEST(StoreCompat, V1StoreLoadsWithSynthesizedLegacySchema) {
  const StoreContents contents = read_store(data_path("golden_v1_4axis.store"));
  EXPECT_FALSE(contents.truncated_tail);
  EXPECT_EQ(contents.manifest.version, 1u);
  ASSERT_EQ(contents.manifest.axes.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(contents.manifest.axes[i].name,
              campaign::legacy_axis_names()[i]);
    // v1 manifests never carried value lists; the synthesized schema has
    // names and kinds only.
    EXPECT_TRUE(contents.manifest.axes[i].values.empty());
  }
  ASSERT_EQ(contents.cells.size(), 4u);
  for (const campaign::CellStats& cell : contents.cells) {
    ASSERT_EQ(cell.coords.size(), 4u);
    EXPECT_EQ(cell.coords[0].axis, "defense");
    EXPECT_EQ(cell.coords[1].axis, "model");
    EXPECT_EQ(cell.coords[1].value.str, "resnet50_pt");
    EXPECT_EQ(cell.coords[2].axis, "delay_s");
    EXPECT_EQ(cell.coords[3].axis, "scrubber_Bps");
    EXPECT_EQ(cell.coords[3].value.num, 0.0);
    EXPECT_EQ(cell.trials, 2u);
  }
}

TEST(StoreCompat, V1StatsOutputIsByteIdenticalToPreRefactorBinary) {
  const SweepData data = load_sweep({data_path("golden_v1_4axis.store")});
  const campaign::StatsReport report = campaign::analyze_sweep(data);
  EXPECT_EQ(report.to_text(), read_file(data_path("golden_v1_stats.txt")));
  EXPECT_EQ(report.to_csv(), read_file(data_path("golden_v1_stats.csv")));
  // The CLI terminates JSON output with one newline; to_json() does not.
  EXPECT_EQ(report.to_json() + "\n",
            read_file(data_path("golden_v1_stats.json")));
}

TEST(StoreCompat, V1DiffsAgainstFreshV2StoreWithZeroDeltas) {
  // Re-run the golden grid with today's binary into a v2 store, then
  // cross-version diff: every cell must pair on the legacy axes with
  // every delta exactly zero (trial reseeding is format-independent).
  const campaign::GridBuilder grid = golden_grid();
  campaign::CampaignOptions options;
  options.threads = 2;
  options.trials_per_cell = 2;

  StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = options.trials_per_cell;
  manifest.trial_salt = options.trial_salt;
  manifest.axes = grid.axis_schema();

  const auto dir = std::filesystem::temp_directory_path() / "msa_compat_tests";
  std::filesystem::create_directories(dir);
  const std::string v2_path = (dir / "fresh_v2.store").string();
  std::filesystem::remove(v2_path);
  {
    campaign::CampaignRunner runner{options};
    CampaignStore store{v2_path, manifest, CampaignStore::Mode::kCreate};
    (void)runner.run(grid, store);
  }
  EXPECT_EQ(read_store(v2_path).manifest.version, kStoreFormatVersion);

  const campaign::StatsReport v1 = campaign::analyze_sweep(
      load_sweep({data_path("golden_v1_4axis.store")}));
  const campaign::StatsReport v2 =
      campaign::analyze_sweep(load_sweep({v2_path}));
  const campaign::DiffReport diff = campaign::diff_sweeps(v1, v2);

  EXPECT_EQ(diff.shared_axes, campaign::legacy_axis_names());
  ASSERT_EQ(diff.cells.size(), 4u);
  EXPECT_TRUE(diff.only_in_a.empty());
  EXPECT_TRUE(diff.only_in_b.empty());
  EXPECT_EQ(diff.significant_cells, 0u);
  for (const campaign::CellDelta& d : diff.cells) {
    EXPECT_EQ(d.success_delta, 0.0);
    EXPECT_EQ(d.denial_delta, 0.0);
    EXPECT_EQ(d.p50_shift, 0.0);
    EXPECT_EQ(d.p90_shift, 0.0);
    EXPECT_EQ(d.p99_shift, 0.0);
  }
  for (const campaign::AxisDelta& d : diff.marginals) {
    EXPECT_EQ(d.success_delta, 0.0);
    EXPECT_EQ(d.mean_psnr_shift, 0.0);
  }
}

TEST(StoreCompat, V1StoreIsReadableButNotResumable) {
  // A v2 writer's manifest (version 2, axes pinned) can never match a v1
  // file's, so resuming a v1 store is refused rather than silently mixing
  // formats in one file. read/merge/compact remain the upgrade path.
  const std::string path = tmp_copy_of_golden("resume_refused.store");
  const campaign::GridBuilder grid = golden_grid();
  StoreManifest manifest;
  manifest.grid_fingerprint = grid.fingerprint();
  manifest.grid_cells = grid.full_size();
  manifest.trials_per_cell = 2;
  manifest.axes = grid.axis_schema();
  EXPECT_THROW(
      (CampaignStore{path, manifest, CampaignStore::Mode::kResume}),
      std::runtime_error);
}

TEST(StoreCompat, CompactionUpgradesV1ToCurrentFormat) {
  const std::string path = tmp_copy_of_golden("upgrade.store");
  const std::string stats_before = campaign::analyze_sweep(
      load_sweep({path})).to_csv();

  const CompactionResult result = compact_store(path);
  EXPECT_EQ(result.cells_dropped, 0u);
  EXPECT_EQ(result.trials_dropped, 0u);

  const StoreContents upgraded = read_store(path);
  EXPECT_EQ(upgraded.manifest.version, kStoreFormatVersion);
  EXPECT_EQ(upgraded.format, kSegmentedStoreFormat);
  ASSERT_EQ(upgraded.cells.size(), 4u);
  // The rewritten store reads back to the same report bytes — including
  // the checked-in pre-refactor goldens, so a v1 store upgraded through
  // segmented compaction still renders the exact historical output.
  const campaign::StatsReport report =
      campaign::analyze_sweep(load_sweep({path}));
  EXPECT_EQ(report.to_csv(), stats_before);
  EXPECT_EQ(report.to_text(), read_file(data_path("golden_v1_stats.txt")));
  EXPECT_EQ(report.to_csv(), read_file(data_path("golden_v1_stats.csv")));

  // Compacting the already-segmented upgrade is byte-stable.
  const CompactionResult again = compact_store(path);
  EXPECT_EQ(again.bytes_after, again.bytes_before);
  EXPECT_EQ(campaign::analyze_sweep(load_sweep({path})).to_csv(),
            stats_before);
}

}  // namespace
}  // namespace msa::persist
