#include "vitis/stream_runner.h"

#include <gtest/gtest.h>

#include "attack/address_resolver.h"
#include "attack/descriptor_scan.h"
#include "attack/scraper.h"
#include "attack/signature_db.h"
#include "vitis/model_zoo.h"

namespace msa::vitis {
namespace {

std::vector<img::Image> make_frames(std::size_t n, std::uint32_t side = 48) {
  std::vector<img::Image> frames;
  for (std::size_t i = 0; i < n; ++i) {
    frames.push_back(img::make_test_image(side, side, 1000 + i));
  }
  return frames;
}

struct Fixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  os::Pid pid = 0;
  XModel model = make_zoo_model("resnet50_pt");

  Fixture() {
    sys.add_user(1000, "victim");
    sys.add_user(1001, "attacker");
    pid = sys.spawn(1000, {"./video_pipeline"}, "pts/1");
  }
};

TEST(StreamLayout, OrderedAndDeterministic) {
  const XModel m = make_zoo_model("resnet50_pt");
  const StreamLayout a = StreamRunner::layout_for(m, 48, 48, 4);
  const StreamLayout b = StreamRunner::layout_for(m, 48, 48, 4);
  EXPECT_EQ(a, b);
  EXPECT_LT(a.meta_off, a.desc_ring_off);
  EXPECT_LT(a.desc_ring_off, a.strings_off);
  EXPECT_LT(a.strings_off, a.xmodel_off);
  EXPECT_LT(a.xmodel_off, a.frame_ring_off);
  EXPECT_LT(a.frame_ring_off, a.output_ring_off);
  EXPECT_LE(a.output_ring_off, a.total_bytes);
  EXPECT_EQ(a.frame_bytes(), 48u * 48 * 3);
  EXPECT_EQ(a.frame_slot_off(1) - a.frame_slot_off(0), a.frame_bytes());
}

TEST(StreamLayout, ZeroRingThrows) {
  const XModel m = make_zoo_model("resnet50_pt");
  EXPECT_THROW((void)StreamRunner::layout_for(m, 48, 48, 0),
               std::invalid_argument);
}

TEST(StreamRunner, ValidatesInput) {
  Fixture f;
  StreamRunner runner{f.sys};
  EXPECT_THROW((void)runner.run(f.pid, f.model, {}, 4), std::invalid_argument);
  std::vector<img::Image> mixed{img::make_test_image(48, 48, 1),
                                img::make_test_image(32, 32, 2)};
  EXPECT_THROW((void)runner.run(f.pid, f.model, mixed, 4),
               std::invalid_argument);
}

TEST(StreamRunner, ProcessesEveryFrame) {
  Fixture f;
  StreamRunner runner{f.sys};
  const auto frames = make_frames(10);
  const StreamRunResult r = runner.run(f.pid, f.model, frames, 4);
  EXPECT_EQ(r.top_classes.size(), 10u);
  for (const std::size_t c : r.top_classes) EXPECT_LT(c, 10u);
}

TEST(StreamRunner, RingHoldsLastFrames) {
  Fixture f;
  StreamRunner runner{f.sys};
  const auto frames = make_frames(10);
  const StreamRunResult r = runner.run(f.pid, f.model, frames, 4);

  // Slots hold frames 6..9 after ten frames through a 4-ring:
  // slot s holds the last frame with index ≡ s (mod 4).
  const mem::VirtAddr heap = f.sys.process(f.pid).heap_base();
  for (std::uint32_t slot = 0; slot < 4; ++slot) {
    std::vector<std::uint8_t> staged(
        static_cast<std::size_t>(r.layout.frame_bytes()));
    f.sys.read_virt(f.pid, heap + r.layout.frame_slot_off(slot), staged);
    // Frame indices 8,9,6,7 live in slots 0,1,2,3 after 10 frames.
    const std::size_t frame_index = slot < 2 ? 8 + slot : 4 + slot;
    EXPECT_EQ(img::Image::from_rgb_bytes(staged, 48, 48), frames[frame_index])
        << "slot " << slot;
  }
}

TEST(StreamRunner, FewerFramesThanRingLeavesSlotsEmpty) {
  Fixture f;
  StreamRunner runner{f.sys};
  const auto frames = make_frames(2);
  const StreamRunResult r = runner.run(f.pid, f.model, frames, 4);
  EXPECT_EQ(r.top_classes.size(), 2u);
  // Slot 3 was never written: reads as zeros.
  const mem::VirtAddr heap = f.sys.process(f.pid).heap_base();
  std::vector<std::uint8_t> staged(
      static_cast<std::size_t>(r.layout.frame_bytes()));
  f.sys.read_virt(f.pid, heap + r.layout.frame_slot_off(3), staged);
  for (const std::uint8_t b : staged) ASSERT_EQ(b, 0);
}

TEST(StreamRunner, AttackRecoversTheFrameRing) {
  // End-to-end: terminate the pipeline, scrape, recover all ring frames
  // via their descriptors.
  Fixture f;
  StreamRunner runner{f.sys};
  const auto frames = make_frames(10);
  (void)runner.run(f.pid, f.model, frames, 4);

  dbg::SystemDebugger dbg{f.sys, 1001};
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(f.pid);
  f.sys.terminate(f.pid);
  attack::MemoryScraper scraper{dbg};
  const attack::ScrapedDump dump = scraper.scrape(target);

  const auto recovered = attack::recover_frame_ring(dump);
  ASSERT_EQ(recovered.size(), 4u);
  // Recovered frames (in slot order) are exactly the last four the
  // pipeline saw: 8, 9, 6, 7.
  EXPECT_EQ(recovered[0], frames[8]);
  EXPECT_EQ(recovered[1], frames[9]);
  EXPECT_EQ(recovered[2], frames[6]);
  EXPECT_EQ(recovered[3], frames[7]);
}

TEST(StreamRunner, StreamResidueStillIdentifiesModel) {
  Fixture f;
  StreamRunner runner{f.sys};
  (void)runner.run(f.pid, f.model, make_frames(3), 2);
  dbg::SystemDebugger dbg{f.sys, 1001};
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(f.pid);
  f.sys.terminate(f.pid);
  attack::MemoryScraper scraper{dbg};
  const attack::ScrapedDump dump = scraper.scrape(target);
  const attack::SignatureDb db = attack::SignatureDb::for_zoo();
  EXPECT_EQ(db.identify(dump.bytes).value_or("<none>"), "resnet50_pt");
}

class StreamRingSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(StreamRingSweep, RecoveredFrameCountEqualsRingDepth) {
  // Property: after >= ring frames, the attacker recovers exactly `ring`
  // distinct frames regardless of depth.
  const std::uint32_t ring = GetParam();
  Fixture f;
  StreamRunner runner{f.sys};
  const auto frames = make_frames(ring + 5);
  (void)runner.run(f.pid, f.model, frames, ring);

  dbg::SystemDebugger dbg{f.sys, 1001};
  attack::AddressResolver resolver{dbg};
  const attack::ResolvedTarget target = resolver.resolve_heap(f.pid);
  f.sys.terminate(f.pid);
  attack::MemoryScraper scraper{dbg};
  const auto recovered = attack::recover_frame_ring(scraper.scrape(target));
  EXPECT_EQ(recovered.size(), ring);
}

INSTANTIATE_TEST_SUITE_P(Rings, StreamRingSweep,
                         ::testing::Values(1, 2, 3, 4, 8));

}  // namespace
}  // namespace msa::vitis
