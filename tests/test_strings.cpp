#include "util/strings.h"

#include <gtest/gtest.h>

namespace msa::util {
namespace {

TEST(HexFormat, NoPrefixMatchesMapsStyle) {
  EXPECT_EQ(hex_no_prefix(0xaaaaee775000ULL), "aaaaee775000");
  EXPECT_EQ(hex_no_prefix(0), "0");
  EXPECT_EQ(hex_no_prefix(0xF), "f");
}

TEST(HexFormat, PrefixedWithWidth) {
  EXPECT_EQ(hex_0x(0x61c6d730, 8), "0x61c6d730");
  EXPECT_EQ(hex_0x(0x0, 8), "0x00000000");  // devmem zero read
  EXPECT_EQ(hex_0x(0xF7F5F8FD, 8), "0xf7f5f8fd");
  EXPECT_EQ(hex_0x(0x5, 0), "0x5");
}

TEST(ParseHex, AcceptsBothForms) {
  EXPECT_EQ(parse_hex("0xaaaaee775000"), 0xaaaaee775000ULL);
  EXPECT_EQ(parse_hex("aaaaee775000"), 0xaaaaee775000ULL);
  EXPECT_EQ(parse_hex("0XFF"), 0xFFu);
  EXPECT_EQ(parse_hex("0"), 0u);
}

TEST(ParseHex, RejectsBadInput) {
  EXPECT_THROW((void)parse_hex(""), std::invalid_argument);
  EXPECT_THROW((void)parse_hex("0x"), std::invalid_argument);
  EXPECT_THROW((void)parse_hex("xyz"), std::invalid_argument);
  EXPECT_THROW((void)parse_hex("0x12345678123456789"), std::invalid_argument);
}

TEST(ParseHex, RoundTripsFormatting) {
  for (const std::uint64_t v : {0ULL, 1ULL, 0x61c6d730ULL, ~0ULL}) {
    EXPECT_EQ(parse_hex(hex_no_prefix(v)), v);
    EXPECT_EQ(parse_hex(hex_0x(v)), v);
  }
}

TEST(Split, PreservesEmptyFields) {
  const auto parts = split("a--b-", '-');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
  EXPECT_EQ(parts[3], "");
}

TEST(Split, SingleFieldNoDelimiter) {
  const auto parts = split("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitWs, CollapsesRuns) {
  const auto parts = split_ws("  1391   2 \t 0  03:51\n");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "1391");
  EXPECT_EQ(parts[3], "03:51");
}

TEST(SplitWs, EmptyAndAllWhitespace) {
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t\n ").empty());
}

TEST(StartsWithContains, Basics) {
  EXPECT_TRUE(starts_with("resnet50_pt", "resnet"));
  EXPECT_FALSE(starts_with("res", "resnet"));
  EXPECT_TRUE(contains("./resnet50_pt model.xmodel", "resnet50"));
  EXPECT_FALSE(contains("squeezenet", "resnet"));
}

TEST(FindAll, FindsAllOccurrences) {
  const std::string hay = "abcabcabc";
  const std::vector<std::uint8_t> bytes{hay.begin(), hay.end()};
  const auto hits = find_all(bytes, "abc");
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 3u);
  EXPECT_EQ(hits[2], 6u);
}

TEST(FindAll, OverlappingMatches) {
  const std::string hay = "aaaa";
  const std::vector<std::uint8_t> bytes{hay.begin(), hay.end()};
  EXPECT_EQ(find_all(bytes, "aa").size(), 3u);
}

TEST(FindAll, EmptyNeedleAndOversizeNeedle) {
  const std::vector<std::uint8_t> bytes{1, 2, 3};
  EXPECT_TRUE(find_all(bytes, "").empty());
  EXPECT_TRUE(find_all(bytes, "abcdef").empty());
}

TEST(FindAll, BinaryHaystackWithEmbeddedNuls) {
  std::vector<std::uint8_t> bytes{0x00, 'r', 'e', 's', 0x00, 'r', 'e', 's'};
  EXPECT_EQ(find_all(bytes, "res").size(), 2u);
}

TEST(ExtractStrings, FindsRunsAboveThreshold) {
  std::vector<std::uint8_t> data;
  const std::string s1 = "resnet50_pt";
  data.insert(data.end(), s1.begin(), s1.end());
  data.push_back(0);
  data.push_back(0xFF);
  const std::string s2 = "abc";  // below default min_len 4
  data.insert(data.end(), s2.begin(), s2.end());
  data.push_back(0);
  const auto strings = extract_strings(data, 4);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], "resnet50_pt");
}

TEST(ExtractStrings, TrailingRunWithoutTerminator) {
  const std::string s = "trailing_string";
  std::vector<std::uint8_t> data{0x01};
  data.insert(data.end(), s.begin(), s.end());
  const auto strings = extract_strings(data, 4);
  ASSERT_EQ(strings.size(), 1u);
  EXPECT_EQ(strings[0], s);
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b", "c"}, " "), "a b c");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"solo"}, ","), "solo");
}

}  // namespace
}  // namespace msa::util
