#include "os/system.h"

#include <gtest/gtest.h>

#include "util/strings.h"

namespace msa::os {
namespace {

PetaLinuxSystem make() { return PetaLinuxSystem{SystemConfig::test_small()}; }

TEST(System, SpawnAssignsSequentialPids) {
  auto sys = make();
  const Pid a = sys.spawn(0, {"sh"}, "pts/0");
  const Pid b = sys.spawn(0, {"sh"}, "pts/1");
  EXPECT_EQ(b, a + 1);
  EXPECT_TRUE(sys.alive(a));
  EXPECT_TRUE(sys.alive(b));
}

TEST(System, SetNextPidReproducesPaperPids) {
  auto sys = make();
  sys.set_next_pid(1391);
  const Pid victim = sys.spawn(0, {"./resnet50_pt"}, "pts/1");
  EXPECT_EQ(victim, 1391);
  // Reusing a dead pid range is fine; colliding with a live pid is not.
  EXPECT_THROW(sys.set_next_pid(1391), std::invalid_argument);
  EXPECT_NO_THROW(sys.set_next_pid(1300));
  EXPECT_THROW(sys.set_next_pid(0), std::invalid_argument);
  // spawn skips over the live pid 1391 when the counter reaches it.
  sys.set_next_pid(1391 - 1);
  EXPECT_EQ(sys.spawn(0, {"a"}, "pts/0"), 1390);
  EXPECT_EQ(sys.spawn(0, {"b"}, "pts/0"), 1392);
}

TEST(System, SpawnRejectsEmptyArgv) {
  auto sys = make();
  EXPECT_THROW(sys.spawn(0, {}, "pts/0"), std::invalid_argument);
}

TEST(System, SpawnCreatesTextAndHeapVmas) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"./app"}, "pts/0");
  const Process& p = sys.process(pid);
  EXPECT_NE(p.find_vma_named("[heap]"), nullptr);
  EXPECT_NE(p.find_vma_named("./app"), nullptr);
  EXPECT_EQ(p.heap_base(), sys.config().heap_va_base);
  EXPECT_EQ(p.brk(), p.heap_base());
}

TEST(System, SbrkBacksPagesWithFrames) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const std::uint64_t before = sys.allocator().used_frames();
  const mem::VirtAddr old = sys.sbrk(pid, 3 * mem::kPageSize + 100);
  EXPECT_EQ(old, sys.config().heap_va_base);
  EXPECT_EQ(sys.allocator().used_frames(), before + 4);  // rounded up
  EXPECT_EQ(sys.process(pid).brk(), old + 3 * mem::kPageSize + 100);
}

TEST(System, SbrkZeroIsNoop) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const auto used = sys.allocator().used_frames();
  (void)sys.sbrk(pid, 0);
  EXPECT_EQ(sys.allocator().used_frames(), used);
}

TEST(System, VirtReadWriteRoundTrip) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const mem::VirtAddr base = sys.sbrk(pid, 2 * mem::kPageSize);
  std::vector<std::uint8_t> data(5000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  sys.write_virt(pid, base + 100, data);  // crosses a page boundary
  std::vector<std::uint8_t> out(data.size());
  sys.read_virt(pid, base + 100, out);
  EXPECT_EQ(out, data);
}

TEST(System, Virt32Helpers) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const mem::VirtAddr base = sys.sbrk(pid, mem::kPageSize);
  sys.write_virt32(pid, base + 8, 0xF7F5F8FD);
  EXPECT_EQ(sys.read_virt32(pid, base + 8), 0xF7F5F8FDu);
}

TEST(System, UnmappedAccessSegfaults) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  std::uint8_t buf[4];
  EXPECT_THROW(sys.read_virt(pid, 0xdead000, buf), SegmentationFault);
  EXPECT_THROW(sys.write_virt(pid, sys.config().heap_va_base, buf),
               SegmentationFault);
}

TEST(System, TerminateRemovesProcessAndFreesFrames) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  (void)sys.sbrk(pid, 4 * mem::kPageSize);
  const auto used = sys.allocator().used_frames();
  sys.terminate(pid);
  EXPECT_FALSE(sys.alive(pid));
  EXPECT_EQ(sys.allocator().used_frames(), used - 4);
  EXPECT_THROW((void)sys.process(pid), std::invalid_argument);
  EXPECT_THROW(sys.terminate(pid), std::invalid_argument);
}

TEST(System, ResidueSurvivesTerminationByDefault) {
  // The headline vulnerability, at OS level.
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const mem::VirtAddr base = sys.sbrk(pid, mem::kPageSize);
  const std::string secret = "private-weights-0123456789";
  sys.write_virt(pid, base,
                 std::span{reinterpret_cast<const std::uint8_t*>(secret.data()),
                           secret.size()});
  const auto pa = sys.process(pid).page_table().translate(base);
  ASSERT_TRUE(pa.has_value());
  sys.terminate(pid);
  // Physical read after death: the secret is still there.
  std::string readback(secret.size(), '\0');
  for (std::size_t i = 0; i < secret.size(); ++i) {
    readback[i] = static_cast<char>(sys.dram().read8(*pa + i));
  }
  EXPECT_EQ(readback, secret);
}

TEST(System, ZeroOnFreeConfigScrubsResidue) {
  SystemConfig cfg = SystemConfig::test_small();
  cfg.sanitize = mem::SanitizePolicy::kZeroOnFree;
  PetaLinuxSystem sys{cfg};
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  const mem::VirtAddr base = sys.sbrk(pid, mem::kPageSize);
  sys.write_virt32(pid, base, 0xDEADBEEF);
  const auto pa = sys.process(pid).page_table().translate(base);
  sys.terminate(pid);
  EXPECT_EQ(sys.dram().read32(*pa), 0u);
}

TEST(System, TerminatedRecordCapturesGroundTruth) {
  auto sys = make();
  const Pid pid = sys.spawn(7, {"./resnet50_pt"}, "pts/1");
  (void)sys.sbrk(pid, 2 * mem::kPageSize);
  sys.terminate(pid);
  ASSERT_EQ(sys.terminated().size(), 1u);
  const TerminatedRecord& rec = sys.terminated().front();
  EXPECT_EQ(rec.pid, pid);
  EXPECT_EQ(rec.uid, 7u);
  EXPECT_EQ(rec.cmdline, "./resnet50_pt");
  EXPECT_EQ(rec.heap_frames.size(), 2u);
  EXPECT_EQ(rec.heap_end - rec.heap_base, 2 * mem::kPageSize);
}

TEST(System, PsEfListsAllProcessesWithHeader) {
  auto sys = make();
  sys.set_next_pid(1389);
  (void)sys.spawn(0, {"[kworker/3:0-events]"}, "");
  (void)sys.spawn(0, {"ps", "-ef"}, "pts/0");
  const std::string ps = sys.ps_ef();
  EXPECT_NE(ps.find("PID PPID C STIME TTY TIME CMD"), std::string::npos);
  EXPECT_NE(ps.find("1389"), std::string::npos);
  EXPECT_NE(ps.find("[kworker/3:0-events]"), std::string::npos);
  EXPECT_NE(ps.find("ps -ef"), std::string::npos);
}

TEST(System, ProcMapsWorldReadableByDefault) {
  auto sys = make();
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  const Pid pid = sys.spawn(1000, {"victim_app"}, "pts/1");
  // PetaLinux behaviour: another uid can read the victim's maps.
  EXPECT_NO_THROW((void)sys.proc_maps(1001, pid));
  EXPECT_NO_THROW((void)sys.proc_pagemap(1001, pid, 0, 1));
}

TEST(System, ProcOwnerOnlyPolicyDeniesCrossUser) {
  SystemConfig cfg = SystemConfig::test_small();
  cfg.proc_access = ProcAccessPolicy::kOwnerOrRoot;
  PetaLinuxSystem sys{cfg};
  sys.add_user(1000, "victim");
  sys.add_user(1001, "attacker");
  const Pid pid = sys.spawn(1000, {"victim_app"}, "pts/1");
  EXPECT_THROW((void)sys.proc_maps(1001, pid), PermissionError);
  EXPECT_THROW((void)sys.proc_pagemap(1001, pid, 0, 1), PermissionError);
  // Owner and root still allowed.
  EXPECT_NO_THROW((void)sys.proc_maps(1000, pid));
  EXPECT_NO_THROW((void)sys.proc_maps(0, pid));
}

TEST(System, HeapVaAslrRandomizesBase) {
  SystemConfig cfg = SystemConfig::test_small();
  cfg.heap_va_aslr = true;
  PetaLinuxSystem sys{cfg};
  const Pid a = sys.spawn(0, {"a"}, "pts/0");
  const Pid b = sys.spawn(0, {"b"}, "pts/0");
  EXPECT_NE(sys.process(a).heap_base(), sys.process(b).heap_base());
  EXPECT_EQ(sys.process(a).heap_base() % mem::kPageSize, 0u);
}

TEST(System, ClockAdvances) {
  auto sys = make();
  const auto t0 = sys.now_s();
  sys.advance_time(125);
  EXPECT_EQ(sys.now_s(), t0 + 125);
}

TEST(System, UserNames) {
  auto sys = make();
  sys.add_user(1000, "victim");
  EXPECT_EQ(sys.user_name(0), "root");
  EXPECT_EQ(sys.user_name(1000), "victim");
  EXPECT_EQ(sys.user_name(555), "555");  // unknown uid falls back to numeric
}

TEST(System, DevmemPathReadsRawDram) {
  auto sys = make();
  sys.devmem_write32(0x2000, 0xCAFEBABE);
  EXPECT_EQ(sys.devmem_read32(0x2000), 0xCAFEBABEu);
}

TEST(System, MmapRegionAppearsInMaps) {
  auto sys = make();
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  sys.mmap_region(pid, 0xffffb13b5000ULL, 0x1000, "/dev/dri/renderD128");
  EXPECT_NE(sys.proc_maps(0, pid).find("/dev/dri/renderD128"),
            std::string::npos);
}

TEST(System, Zcu102ConfigHasLargerBoard) {
  EXPECT_GT(SystemConfig::zcu102().board.size, SystemConfig::zcu104().board.size);
}

TEST(System, PoolExhaustionThrowsBadAlloc) {
  SystemConfig cfg = SystemConfig::test_small();
  cfg.pool_frames = 4;
  PetaLinuxSystem sys{cfg};
  const Pid pid = sys.spawn(0, {"app"}, "pts/0");
  EXPECT_THROW(sys.sbrk(pid, 16 * mem::kPageSize), std::bad_alloc);
}

}  // namespace
}  // namespace msa::os
