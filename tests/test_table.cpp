// Shared emitter-layer tests: value formatting, CSV quoting (including
// the carriage-return regression), JSON escaping, and the Table
// renderers every analysis surface (report, stats, diff) builds on.
#include "campaign/table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <vector>

#include "attack/scenario.h"
#include "campaign/report.h"

namespace msa::campaign::table {
namespace {

TEST(FormatDouble, RoundTripsAndKeepsIntegralForm) {
  EXPECT_EQ(format_double(60.0), "60");
  EXPECT_EQ(format_double(-3.0), "-3");
  EXPECT_EQ(format_double(0.0), "0");
  EXPECT_EQ(format_double(4.0 * 1024 * 1024), "4194304");

  // Non-integral values round-trip exactly through strtod.
  for (const double v : {0.1, 1.0 / 3.0, 99.123456789, 1e-17, 2.5e20}) {
    const std::string s = format_double(v);
    EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
  }

  EXPECT_EQ(format_double(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_double(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_double(std::nan("")), "nan");
}

TEST(CsvEscape, QuotesDelimitersAndControlCharacters) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape(""), "");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("two\nlines"), "\"two\nlines\"");
}

TEST(CsvEscape, CarriageReturnTriggersQuoting) {
  // Regression: a bare CR used to pass through unquoted, splitting the
  // row in strict readers (RFC 4180 terminates records on CRLF).
  EXPECT_EQ(csv_escape("denied\rreason"), "\"denied\rreason\"");
  EXPECT_EQ(csv_escape("tail\r\n"), "\"tail\r\n\"");
}

TEST(CsvEscape, CarriageReturnInDenialReasonKeepsReportRowIntact) {
  // The end-to-end shape of the original bug: a denial reason carrying
  // "\r\n" must not add a row to SweepReport CSV.
  CellStats cell;
  cell.index = 0;
  cell.coords = {{"defense", AxisValue::of_string("baseline")},
                 {"model", AxisValue::of_string("m")}};
  cell.trials = 1;
  cell.denials = 1;
  cell.first_denial_reason = "firewall\r\nblocked";
  SweepReport report;
  report.cells.push_back(cell);

  const std::string csv = report.to_csv();
  // Header + one data row. A naive line count would see three: count
  // rows the way a strict CSV reader does, honoring quoted fields.
  std::size_t rows = 0;
  bool in_quotes = false;
  for (const char c : csv) {
    if (c == '"') in_quotes = !in_quotes;
    if (c == '\n' && !in_quotes) ++rows;
  }
  EXPECT_EQ(rows, 2u);
  EXPECT_NE(csv.find("\"firewall\r\nblocked\""), std::string::npos);
}

TEST(JsonEscape, EscapesControlAndStructuralCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("nl\ntab\t"), "nl\\ntab\\t");
  EXPECT_EQ(json_escape("cr\r"), "cr\\u000d");
}

TEST(JsonDouble, SentinelsForNonFinite) {
  EXPECT_EQ(json_double(1.5), "1.5");
  EXPECT_EQ(json_double(std::nan("")), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "1e999");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "-1e999");
}

TEST(Cells, PerFormatRenderings) {
  const Cell s = str_cell("a\"b");
  EXPECT_EQ(s.text, "a\"b");
  EXPECT_EQ(s.csv, "a\"b");  // escaped at emit time, not here
  EXPECT_EQ(s.json, "\"a\\\"b\"");

  const Cell fixed3 = num_cell(1.0 / 3.0, 3);
  EXPECT_EQ(fixed3.text, "0.333");
  EXPECT_EQ(std::strtod(fixed3.csv.c_str(), nullptr), 1.0 / 3.0);

  const Cell b = bool_cell(true);
  EXPECT_EQ(b.text, "yes");
  EXPECT_EQ(b.csv, "true");
  EXPECT_EQ(b.json, "true");

  const Cell e = empty_cell();
  EXPECT_EQ(e.csv, "");
  EXPECT_EQ(e.json, "null");
}

Table two_column_fixture() {
  Table t{{{"name", Align::kLeft}, {"value", Align::kRight}}};
  t.add_row({str_cell("alpha"), num_cell(1.5)});
  t.add_row({str_cell("b"), num_cell(42.0)});
  return t;
}

TEST(Table, TextAlignsAndStripsTrailingSpace) {
  const std::string text = two_column_fixture().to_text();
  EXPECT_EQ(text,
            "name   value\n"
            "alpha    1.5\n"
            "b         42\n");
}

TEST(Table, CsvEmitsHeaderAndEscapedRows) {
  Table t{{{"name"}, {"note"}}};
  t.add_row({str_cell("a,b"), str_cell("cr\rhere")});
  EXPECT_EQ(t.to_csv(), "name,note\n\"a,b\",\"cr\rhere\"\n");
}

TEST(Table, JsonEmitsArrayOfObjects) {
  EXPECT_EQ(two_column_fixture().to_json(),
            "[{\"name\":\"alpha\",\"value\":1.5},"
            "{\"name\":\"b\",\"value\":42}]");
  Table empty{{{"x"}}};
  EXPECT_EQ(empty.to_json(), "[]");
}

TEST(Table, RejectsArityMismatchAndZeroColumns) {
  Table t{{{"only"}}};
  EXPECT_THROW(t.add_row({str_cell("a"), str_cell("b")}),
               std::invalid_argument);
  EXPECT_THROW(Table{std::vector<Column>{}}, std::invalid_argument);
}

TEST(Table, RenderingIsDeterministic) {
  const Table t = two_column_fixture();
  EXPECT_EQ(t.to_text(), two_column_fixture().to_text());
  EXPECT_EQ(t.to_csv(), two_column_fixture().to_csv());
  EXPECT_EQ(t.to_json(), two_column_fixture().to_json());
}

TEST(FullSuccessPredicate, SingleSharedDefinition) {
  // The hoisted predicate is the one ScenarioResult uses.
  attack::ScenarioResult r;
  r.model_identified_correctly = true;
  r.pixel_match = 1.0;
  EXPECT_TRUE(r.full_success());
  EXPECT_TRUE(attack::is_full_success(true, 1.0));

  r.pixel_match = attack::kFullSuccessPixelMatch;  // threshold is strict
  EXPECT_FALSE(r.full_success());
  EXPECT_FALSE(attack::is_full_success(true, attack::kFullSuccessPixelMatch));
  EXPECT_FALSE(attack::is_full_success(false, 1.0));
}

}  // namespace
}  // namespace msa::campaign::table
