#include "vitis/layers.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace msa::vitis {
namespace {

TEST(Tensor, ShapeAndAccess) {
  Tensor t{TensorShape{2, 3, 4}};
  EXPECT_EQ(t.size(), 24u);
  t.set(1, 2, 3, 42);
  EXPECT_EQ(t.at(1, 2, 3), 42);
  EXPECT_EQ(t.at(0, 0, 0), 0);
}

TEST(Tensor, OutOfRangeThrows) {
  Tensor t{TensorShape{1, 2, 2}};
  EXPECT_THROW((void)t.at(1, 0, 0), std::out_of_range);
  EXPECT_THROW(t.set(0, 2, 0, 1), std::out_of_range);
}

TEST(Tensor, EmptyShapeThrows) {
  EXPECT_THROW((Tensor{TensorShape{0, 4, 4}}), std::invalid_argument);
}

TEST(Tensor, FromImageQuantizes) {
  img::Image im{2, 1};
  im.at(0, 0) = img::Rgb{128, 0, 255};
  im.at(1, 0) = img::Rgb{200, 100, 50};
  const Tensor t = tensor_from_image(im);
  EXPECT_EQ(t.shape(), (TensorShape{3, 1, 2}));
  EXPECT_EQ(t.at(0, 0, 0), 0);      // r=128 -> 0
  EXPECT_EQ(t.at(1, 0, 0), -128);   // g=0 -> -128
  EXPECT_EQ(t.at(2, 0, 0), 127);    // b=255 -> 127
  EXPECT_EQ(t.at(0, 0, 1), 72);     // r=200 -> 72
}

Conv2d identity_conv1x1() {
  // Single 1x1 kernel with weight 1, shift 0: passes channel 0 through.
  return Conv2d{1, 1, 1, 1, 0, /*relu=*/false, /*shift=*/0, {1}, {0}};
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  Tensor in{TensorShape{1, 2, 2}};
  in.set(0, 0, 0, 5);
  in.set(0, 1, 1, -7);
  const Tensor out = identity_conv1x1().forward(in);
  EXPECT_EQ(out.at(0, 0, 0), 5);
  EXPECT_EQ(out.at(0, 1, 1), -7);
}

TEST(Conv2d, ReluClampsNegative) {
  Conv2d conv{1, 1, 1, 1, 0, /*relu=*/true, 0, {1}, {0}};
  Tensor in{TensorShape{1, 1, 1}};
  in.set(0, 0, 0, -5);
  EXPECT_EQ(conv.forward(in).at(0, 0, 0), 0);
}

TEST(Conv2d, KnownSumKernel) {
  // 3x3 all-ones kernel, no padding: output = sum of the window.
  Conv2d conv{1, 1, 3, 1, 0, false, 0, std::vector<std::int8_t>(9, 1), {0}};
  Tensor in{TensorShape{1, 3, 3}};
  std::int8_t v = 1;
  for (std::uint32_t y = 0; y < 3; ++y) {
    for (std::uint32_t x = 0; x < 3; ++x) in.set(0, y, x, v++);
  }
  const Tensor out = conv.forward(in);
  EXPECT_EQ(out.shape(), (TensorShape{1, 1, 1}));
  EXPECT_EQ(out.at(0, 0, 0), 45);  // 1+2+...+9
}

TEST(Conv2d, BiasApplied) {
  Conv2d conv{1, 1, 1, 1, 0, false, 0, {0}, {17}};
  Tensor in{TensorShape{1, 1, 1}};
  EXPECT_EQ(conv.forward(in).at(0, 0, 0), 17);
}

TEST(Conv2d, RequantShiftScalesDown) {
  Conv2d conv{1, 1, 1, 1, 0, false, /*shift=*/3, {64}, {0}};
  Tensor in{TensorShape{1, 1, 1}};
  in.set(0, 0, 0, 8);  // 64*8 = 512; >>3 = 64
  EXPECT_EQ(conv.forward(in).at(0, 0, 0), 64);
}

TEST(Conv2d, SaturatesToInt8) {
  Conv2d conv{1, 1, 1, 1, 0, false, 0, {127}, {0}};
  Tensor in{TensorShape{1, 1, 1}};
  in.set(0, 0, 0, 127);  // 16129 clamps to 127
  EXPECT_EQ(conv.forward(in).at(0, 0, 0), 127);
}

TEST(Conv2d, StrideAndPaddingGeometry) {
  Conv2d conv{3, 8, 3, 2, 1, true, 6, std::vector<std::int8_t>(8 * 3 * 9, 0),
              std::vector<std::int32_t>(8, 0)};
  EXPECT_EQ(conv.output_shape(TensorShape{3, 64, 64}),
            (TensorShape{8, 32, 32}));
  EXPECT_EQ(conv.output_shape(TensorShape{3, 9, 9}), (TensorShape{8, 5, 5}));
}

TEST(Conv2d, ChannelMismatchThrows) {
  Conv2d conv = identity_conv1x1();
  EXPECT_THROW(conv.forward(Tensor{TensorShape{2, 2, 2}}),
               std::invalid_argument);
}

TEST(Conv2d, ParameterSizeValidation) {
  EXPECT_THROW((Conv2d{1, 1, 3, 1, 0, false, 0, {1, 2}, {0}}),
               std::invalid_argument);
  EXPECT_THROW((Conv2d{1, 1, 3, 1, 0, false, 0,
                       std::vector<std::int8_t>(9, 0), {0, 0}}),
               std::invalid_argument);
}

TEST(MaxPool2d, TakesWindowMax) {
  MaxPool2d pool{2, 2};
  Tensor in{TensorShape{1, 2, 4}};
  in.set(0, 0, 0, 3);
  in.set(0, 1, 1, 9);
  in.set(0, 0, 2, -1);
  in.set(0, 1, 3, -2);
  const Tensor out = pool.forward(in);
  EXPECT_EQ(out.shape(), (TensorShape{1, 1, 2}));
  EXPECT_EQ(out.at(0, 0, 0), 9);
  EXPECT_EQ(out.at(0, 0, 1), 0);  // max of {-1, 0, 0, -2} is 0
}

TEST(MaxPool2d, TooSmallInputThrows) {
  MaxPool2d pool{3, 1};
  EXPECT_THROW(pool.forward(Tensor{TensorShape{1, 2, 2}}),
               std::invalid_argument);
}

TEST(GlobalAvgPool, AveragesPerChannel) {
  GlobalAvgPool gap;
  Tensor in{TensorShape{2, 2, 2}};
  for (std::uint32_t y = 0; y < 2; ++y) {
    for (std::uint32_t x = 0; x < 2; ++x) {
      in.set(0, y, x, 8);
      in.set(1, y, x, static_cast<std::int8_t>(-4));
    }
  }
  const Tensor out = gap.forward(in);
  EXPECT_EQ(out.shape(), (TensorShape{2, 1, 1}));
  EXPECT_EQ(out.at(0, 0, 0), 8);
  EXPECT_EQ(out.at(1, 0, 0), -4);
}

TEST(Dense, MatVecWithBias) {
  // 2 -> 2: y0 = x0 + 2*x1 + 1 ; y1 = -x0 + 3 (weights row-major [out][in])
  Dense d{2, 2, false, 0, {1, 2, -1, 0}, {1, 3}};
  Tensor in{TensorShape{2, 1, 1}};
  in.set(0, 0, 0, 4);
  in.set(1, 0, 0, 5);
  const Tensor out = d.forward(in);
  EXPECT_EQ(out.at(0, 0, 0), 15);
  EXPECT_EQ(out.at(1, 0, 0), -1);
}

TEST(Dense, InputSizeMismatchThrows) {
  Dense d{4, 2, false, 0, std::vector<std::int8_t>(8, 0), {0, 0}};
  EXPECT_THROW(d.forward(Tensor{TensorShape{3, 1, 1}}), std::invalid_argument);
}

TEST(Softmax, SumsToOneAndOrdersLogits) {
  Tensor logits{TensorShape{3, 1, 1}};
  logits.set(0, 0, 0, 10);
  logits.set(1, 0, 0, 20);
  logits.set(2, 0, 0, -10);
  const auto probs = softmax(logits);
  const double sum = std::accumulate(probs.begin(), probs.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
  EXPECT_GT(probs[1], probs[0]);
  EXPECT_GT(probs[0], probs[2]);
}

TEST(LayerSerialization, RoundTripsEveryKind) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Conv2d>(
      2, 3, 3, 2, 1, true, 6, std::vector<std::int8_t>(2 * 3 * 9, 7),
      std::vector<std::int32_t>{-1, 0, 1}));
  layers.push_back(std::make_unique<MaxPool2d>(2, 2));
  layers.push_back(std::make_unique<GlobalAvgPool>());
  layers.push_back(std::make_unique<Dense>(
      3, 5, false, 4, std::vector<std::int8_t>(15, -3),
      std::vector<std::int32_t>(5, 9)));

  std::vector<std::uint8_t> blob;
  for (const auto& l : layers) l->serialize(blob);

  std::size_t pos = 0;
  for (const auto& original : layers) {
    const auto copy = deserialize_layer(blob, pos);
    EXPECT_EQ(copy->kind(), original->kind());
    EXPECT_EQ(copy->name(), original->name());
    EXPECT_EQ(copy->param_bytes(), original->param_bytes());
    // Behavioural equality on a probe input.
    const TensorShape probe{original->kind() == LayerKind::kDense
                                ? TensorShape{3, 1, 1}
                                : TensorShape{2, 8, 8}};
    if (original->kind() != LayerKind::kDense || probe.volume() == 3) {
      Tensor in{probe, 3};
      if (original->output_shape(probe) == copy->output_shape(probe)) {
        EXPECT_EQ(original->forward(in).data(), copy->forward(in).data());
      }
    }
  }
  EXPECT_EQ(pos, blob.size());
}

TEST(LayerSerialization, TruncatedBlobThrows) {
  Conv2d conv{1, 1, 1, 1, 0, false, 0, {1}, {0}};
  std::vector<std::uint8_t> blob;
  conv.serialize(blob);
  blob.resize(blob.size() / 2);
  std::size_t pos = 0;
  EXPECT_THROW((void)deserialize_layer(blob, pos), std::invalid_argument);
}

TEST(LayerSerialization, UnknownKindThrows) {
  std::vector<std::uint8_t> blob{0xEE};
  std::size_t pos = 0;
  EXPECT_THROW((void)deserialize_layer(blob, pos), std::invalid_argument);
}

}  // namespace
}  // namespace msa::vitis
