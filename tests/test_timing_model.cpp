#include "dram/timing_model.h"

#include <gtest/gtest.h>

namespace msa::dram {
namespace {

DramTimingModel make() { return DramTimingModel{DramConfig::test_small()}; }

TEST(TimingModel, FirstAccessIsRowMiss) {
  DramTimingModel t = make();
  const double ns = t.access_ns(0x0, 4);
  EXPECT_EQ(t.row_misses(), 1u);
  EXPECT_EQ(t.row_hits(), 0u);
  const auto& p = t.params();
  EXPECT_DOUBLE_EQ(ns, p.t_rcd + p.t_cas + p.t_burst);
}

TEST(TimingModel, SecondAccessSameRowIsHit) {
  DramTimingModel t = make();
  (void)t.access_ns(0x0, 4);
  const double ns = t.access_ns(0x40, 4);
  EXPECT_EQ(t.row_hits(), 1u);
  EXPECT_DOUBLE_EQ(ns, t.params().t_cas + t.params().t_burst);
}

TEST(TimingModel, RowConflictPaysPrecharge) {
  DramTimingModel t = make();
  const DramConfig cfg = DramConfig::test_small();
  (void)t.access_ns(0x0, 4);
  // Same bank, different row: global row stride = banks * row_bytes.
  const PhysAddr conflict = static_cast<PhysAddr>(cfg.banks) * cfg.row_bytes;
  const double ns = t.access_ns(conflict, 4);
  const auto& p = t.params();
  EXPECT_DOUBLE_EQ(ns, p.t_rp + p.t_rcd + p.t_cas + p.t_burst);
  EXPECT_EQ(t.row_misses(), 2u);
}

TEST(TimingModel, DifferentBanksDontConflict) {
  DramTimingModel t = make();
  const DramConfig cfg = DramConfig::test_small();
  (void)t.access_ns(0x0, 4);
  (void)t.access_ns(cfg.row_bytes, 4);  // adjacent row -> next bank
  // Returning to bank 0 row 0 is still a hit: its row stayed open.
  const double ns = t.access_ns(0x80, 4);
  EXPECT_DOUBLE_EQ(ns, t.params().t_cas + t.params().t_burst);
}

TEST(TimingModel, LocateDecomposition) {
  const DramTimingModel t = make();
  const DramConfig cfg = DramConfig::test_small();
  const DramLocation l0 = t.locate(0);
  EXPECT_EQ(l0.bank, 0u);
  EXPECT_EQ(l0.row, 0u);
  EXPECT_EQ(l0.column, 0u);
  const DramLocation l1 = t.locate(cfg.row_bytes + 100);
  EXPECT_EQ(l1.bank, 1u);
  EXPECT_EQ(l1.row, 0u);
  EXPECT_EQ(l1.column, 100u);
  const DramLocation l2 =
      t.locate(static_cast<PhysAddr>(cfg.banks) * cfg.row_bytes);
  EXPECT_EQ(l2.bank, 0u);
  EXPECT_EQ(l2.row, 1u);
}

TEST(TimingModel, BurstCountScalesWithBytes) {
  DramTimingModel t = make();
  const double small = t.access_ns(0x0, 4);
  t.reset();
  const double big = t.access_ns(0x0, 256);  // 4 bursts
  EXPECT_GT(big, small);
  EXPECT_DOUBLE_EQ(big - small, t.params().t_burst * 3);
}

TEST(TimingModel, CpuZeroScalesRoughlyLinearly) {
  DramTimingModel t = make();
  const double one_page = t.cpu_zero_ns(0x0, 4096);
  t.reset();
  const double four_pages = t.cpu_zero_ns(0x0, 4 * 4096);
  EXPECT_NEAR(four_pages / one_page, 4.0, 0.5);
}

TEST(TimingModel, RowCloneMuchCheaperThanCpuForBulk) {
  DramTimingModel t = make();
  const std::uint64_t len = 1 << 20;  // 1 MiB
  const double cpu = t.cpu_zero_ns(0x0, len);
  t.reset();
  std::uint64_t rows = 0;
  const double rc = t.rowclone_zero_ns(0x0, len, &rows);
  EXPECT_EQ(rows, len / DramConfig::test_small().row_bytes);
  EXPECT_GT(cpu / rc, 10.0);  // order-of-magnitude advantage
}

TEST(TimingModel, RowResetCheaperThanRowClone) {
  DramTimingModel t = make();
  const double rc = t.rowclone_zero_ns(0x0, 1 << 16);
  const double rr = t.rowreset_zero_ns(0x0, 1 << 16);
  EXPECT_LT(rr, rc);
}

TEST(TimingModel, RowOpsRoundUpToWholeRows) {
  DramTimingModel t = make();
  std::uint64_t rows = 0;
  (void)t.rowclone_zero_ns(100, 10, &rows);  // 10 bytes inside one row
  EXPECT_EQ(rows, 1u);
  (void)t.rowclone_zero_ns(8190, 10, &rows);  // straddles two rows
  EXPECT_EQ(rows, 2u);
  (void)t.rowclone_zero_ns(0, 0, &rows);
  EXPECT_EQ(rows, 0u);
}

TEST(TimingModel, RowFootprintBytes) {
  DramTimingModel t = make();
  EXPECT_EQ(t.row_footprint_bytes(0, 0), 0u);
  EXPECT_EQ(t.row_footprint_bytes(0, 1), 8192u);
  EXPECT_EQ(t.row_footprint_bytes(8191, 2), 16384u);
  EXPECT_EQ(t.row_footprint_bytes(0, 8192), 8192u);
}

TEST(TimingModel, RowCloneInvalidatesOpenRow) {
  DramTimingModel t = make();
  (void)t.access_ns(0x0, 4);
  (void)t.rowclone_zero_ns(0x0, 64);
  t.reset();  // reset stats but also open rows; re-measure cleanly
  const double ns = t.access_ns(0x0, 4);
  EXPECT_DOUBLE_EQ(ns, t.params().t_rcd + t.params().t_cas + t.params().t_burst);
}

TEST(TimingModel, ResetClearsCounters) {
  DramTimingModel t = make();
  (void)t.access_ns(0x0, 4);
  t.reset();
  EXPECT_EQ(t.row_hits(), 0u);
  EXPECT_EQ(t.row_misses(), 0u);
}

TEST(TimingModel, RejectsBadGeometry) {
  DramConfig c = DramConfig::test_small();
  c.banks = 0;
  EXPECT_THROW(DramTimingModel{c}, std::invalid_argument);
}

}  // namespace
}  // namespace msa::dram
