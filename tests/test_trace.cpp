// Trace-recorder tests: the disabled path records nothing, spans land
// in close order with sane timestamps, a span straddling disable() is
// dropped, full rings overwrite oldest-first and count the loss, and
// the Chrome trace-event export is structurally sound.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace msa::obs {
namespace {

/// Every test leaves the recorder disabled and empty for the next one
/// (the recorder is process-global).
struct TraceTest : testing::Test {
  void SetUp() override {
    Trace::disable();
    Trace::clear();
  }
  void TearDown() override {
    Trace::disable();
    Trace::clear();
  }
};

std::size_t total_spans(const std::vector<ThreadTrace>& threads) {
  std::size_t n = 0;
  for (const ThreadTrace& t : threads) n += t.spans.size();
  return n;
}

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(Trace::enabled());
  {
    TRACE_SPAN("test", "ignored");
  }
  EXPECT_EQ(total_spans(Trace::snapshot()), 0u);
}

TEST_F(TraceTest, RecordsNestedSpansInCloseOrder) {
  Trace::enable();
  {
    TRACE_SPAN("test", "outer");
    {
      TRACE_SPAN("test", "inner");
    }
  }
  Trace::disable();

  const std::vector<ThreadTrace> threads = Trace::snapshot();
  ASSERT_EQ(threads.size(), 1u);
  const ThreadTrace& t = threads[0];
  EXPECT_GT(t.tid, 0u);
  EXPECT_EQ(t.dropped, 0u);
  ASSERT_EQ(t.spans.size(), 2u);
  // Close order: inner closes first.
  EXPECT_STREQ(t.spans[0].name, "inner");
  EXPECT_STREQ(t.spans[1].name, "outer");
  EXPECT_STREQ(t.spans[0].category, "test");
  // Inner is contained within outer.
  const TraceSpan& inner = t.spans[0];
  const TraceSpan& outer = t.spans[1];
  EXPECT_GE(inner.start_ns, outer.start_ns);
  EXPECT_LE(inner.start_ns + inner.dur_ns, outer.start_ns + outer.dur_ns);
}

TEST_F(TraceTest, SpanStraddlingDisableIsDropped) {
  Trace::enable();
  {
    TRACE_SPAN("test", "straddler");
    Trace::disable();
  }
  EXPECT_EQ(total_spans(Trace::snapshot()), 0u);
}

TEST_F(TraceTest, SpanOpenedWhileDisabledStaysDropped) {
  // The complementary straddle: enabling mid-span must not record a
  // span whose start was never captured.
  {
    TRACE_SPAN("test", "latecomer");
    Trace::enable();
  }
  Trace::disable();
  EXPECT_EQ(total_spans(Trace::snapshot()), 0u);
}

TEST_F(TraceTest, ClearEmptiesEveryRing) {
  Trace::enable();
  {
    TRACE_SPAN("test", "a");
  }
  ASSERT_EQ(total_spans(Trace::snapshot()), 1u);
  Trace::clear();
  EXPECT_EQ(total_spans(Trace::snapshot()), 0u);
  EXPECT_TRUE(Trace::enabled());
}

TEST_F(TraceTest, FullRingOverwritesOldestAndCountsDropped) {
  // Capacity applies to rings created after enable(); a fresh thread
  // guarantees a fresh ring.
  Trace::enable(4);
  std::thread recorder{[] {
    for (int i = 0; i < 10; ++i) {
      TRACE_SPAN("test", "burst");
    }
  }};
  recorder.join();
  Trace::disable();

  const std::vector<ThreadTrace> threads = Trace::snapshot();
  ASSERT_EQ(threads.size(), 1u);
  EXPECT_EQ(threads[0].spans.size(), 4u);
  EXPECT_EQ(threads[0].dropped, 6u);
  // The retained spans are the NEWEST four, still in close order.
  for (std::size_t i = 1; i < threads[0].spans.size(); ++i) {
    EXPECT_GE(threads[0].spans[i].start_ns, threads[0].spans[i - 1].start_ns);
  }
}

TEST_F(TraceTest, SnapshotSortsThreadsByOrdinal) {
  Trace::enable();
  std::thread a{[] { TRACE_SPAN("test", "a"); }};
  a.join();
  std::thread b{[] { TRACE_SPAN("test", "b"); }};
  b.join();
  {
    TRACE_SPAN("test", "main");
  }
  Trace::disable();

  const std::vector<ThreadTrace> threads = Trace::snapshot();
  ASSERT_EQ(threads.size(), 3u);
  for (std::size_t i = 1; i < threads.size(); ++i) {
    EXPECT_LT(threads[i - 1].tid, threads[i].tid);
  }
}

TEST_F(TraceTest, ChromeJsonHasEventStructure) {
  Trace::enable();
  {
    TRACE_SPAN("cat\"egory", "na\\me");  // exercises JSON escaping
  }
  Trace::disable();

  const std::string json = Trace::chrome_json();
  EXPECT_EQ(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(json.back(), '\n');
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  // Escaped forms of the hostile literals, never the raw bytes.
  EXPECT_NE(json.find("cat\\\"egory"), std::string::npos);
  EXPECT_NE(json.find("na\\\\me"), std::string::npos);
}

TEST_F(TraceTest, ChromeJsonOfEmptyTraceIsAnEmptyArray) {
  EXPECT_EQ(Trace::chrome_json(),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}\n");
}

}  // namespace
}  // namespace msa::obs
