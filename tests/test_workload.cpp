#include "vitis/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "attack/model_recovery.h"
#include "attack/scraper.h"
#include "attack/signature_db.h"
#include "vitis/model_zoo.h"

namespace msa::vitis {
namespace {

TEST(WorkloadGenerator, DeterministicPerSeed) {
  WorkloadGenerator g1{42}, g2{42}, g3{43};
  WorkloadParams p;
  const auto a = g1.generate(p);
  const auto b = g2.generate(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].model, b[i].model);
    EXPECT_EQ(a[i].image_seed, b[i].image_seed);
    EXPECT_DOUBLE_EQ(a[i].start_s, b[i].start_s);
  }
  const auto c = g3.generate(p);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].image_seed != c[i].image_seed) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(WorkloadGenerator, EventsSortedAndPlausible) {
  WorkloadGenerator g{7};
  WorkloadParams p;
  p.events = 25;
  p.tenants = 4;
  const auto events = g.generate(p);
  ASSERT_EQ(events.size(), 25u);
  std::set<os::Uid> uids;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) {
      EXPECT_GE(events[i].start_s, events[i - 1].start_s);
    }
    EXPECT_GT(events[i].duration_s, 0.0);
    EXPECT_TRUE(zoo_has_model(events[i].model));
    EXPECT_GE(events[i].uid, 1000u);
    EXPECT_LT(events[i].uid, 1004u);
    uids.insert(events[i].uid);
  }
  EXPECT_GT(uids.size(), 1u);  // several tenants actually used
}

TEST(WorkloadGenerator, RejectsEmptyParams) {
  WorkloadGenerator g{1};
  WorkloadParams p;
  p.events = 0;
  EXPECT_THROW((void)g.generate(p), std::invalid_argument);
  p.events = 1;
  p.tenants = 0;
  EXPECT_THROW((void)g.generate(p), std::invalid_argument);
}

struct ExecFixture {
  os::PetaLinuxSystem sys{os::SystemConfig::test_small()};
  VitisAiRuntime runtime{sys};

  ExecFixture() {
    for (os::Uid uid : {1000u, 1001u, 1002u, 1003u}) {
      sys.add_user(uid, "tenant" + std::to_string(uid));
    }
  }
};

TEST(WorkloadExecutor, RunsScheduleToCompletion) {
  ExecFixture f;
  WorkloadGenerator gen{11};
  WorkloadParams p;
  p.events = 8;
  p.image_side = 40;
  const auto schedule = gen.generate(p);
  WorkloadExecutor exec{f.sys, f.runtime};
  const auto executed = exec.run(schedule);
  ASSERT_EQ(executed.size(), 8u);
  // Every job terminated: nothing of the workload remains alive and all
  // frames returned to the pool.
  EXPECT_EQ(f.sys.pids().size(), 0u);
  EXPECT_EQ(f.sys.allocator().used_frames(), 0u);
  EXPECT_EQ(f.sys.terminated().size(), 8u);
}

TEST(WorkloadExecutor, ClockAdvancesWithSchedule) {
  ExecFixture f;
  const auto t0 = f.sys.now_s();
  WorkloadGenerator gen{13};
  WorkloadParams p;
  p.events = 4;
  p.image_side = 40;
  const auto schedule = gen.generate(p);
  WorkloadExecutor exec{f.sys, f.runtime};
  (void)exec.run(schedule);
  const double last_end = schedule.back().end_s();
  EXPECT_GE(f.sys.now_s(), t0 + static_cast<std::uint64_t>(last_end) - 4);
}

TEST(WorkloadExecutor, EmptyScheduleThrows) {
  ExecFixture f;
  WorkloadExecutor exec{f.sys, f.runtime};
  EXPECT_THROW((void)exec.run({}), std::invalid_argument);
}

TEST(WorkloadExecutor, UnknownModelThrows) {
  ExecFixture f;
  WorkloadExecutor exec{f.sys, f.runtime};
  WorkloadEvent e;
  e.model = "not_a_model";
  e.uid = 1000;
  EXPECT_THROW((void)exec.run({e}), std::invalid_argument);
}

TEST(WorkloadExecutor, ResidueAccumulatesAcrossTenants) {
  // After the churn, a single pool scan recovers multiple tenants' models
  // — the cumulative version of the paper's attack.
  ExecFixture f;
  WorkloadGenerator gen{17};
  WorkloadParams p;
  p.events = 10;
  p.image_side = 40;
  WorkloadExecutor exec{f.sys, f.runtime};
  const auto executed = exec.run(gen.generate(p));

  dbg::SystemDebugger dbg{f.sys, 1001};
  attack::MemoryScraper scraper{dbg};
  const dram::PhysAddr pool_base = mem::PageFrameAllocator::frame_to_phys(
      f.sys.config().pool_first_pfn);
  const attack::ScrapedDump scan =
      scraper.scrape_physical_range(pool_base, 2ULL * 1024 * 1024);

  const auto recovered = attack::recover_all_models(scan.bytes);
  EXPECT_GE(recovered.size(), 1u);

  // Every recovered container names a model that actually ran.
  std::set<std::string> ran;
  for (const auto& e : executed) ran.insert(e.event.model);
  for (const auto& r : recovered) {
    EXPECT_TRUE(ran.count(r.model.name()) == 1) << r.model.name();
  }
}

}  // namespace
}  // namespace msa::vitis
