#include "vitis/xmodel.h"

#include <gtest/gtest.h>
#include <algorithm>
#include <iterator>

#include "util/prng.h"
#include "vitis/model_zoo.h"

namespace msa::vitis {
namespace {

TEST(XModel, SerializeDeserializeRoundTrip) {
  const XModel original = make_zoo_model("resnet50_pt");
  const auto blob = original.serialize();
  const XModel copy = XModel::deserialize(blob);
  EXPECT_EQ(copy.name(), original.name());
  EXPECT_EQ(copy.framework(), original.framework());
  EXPECT_EQ(copy.input_shape(), original.input_shape());
  EXPECT_EQ(copy.aux_strings(), original.aux_strings());
  EXPECT_EQ(copy.param_bytes(), original.param_bytes());
  EXPECT_EQ(copy.serialize(), blob);  // canonical form is stable
}

TEST(XModel, DeserializedModelComputesIdentically) {
  const XModel original = make_zoo_model("squeezenet_pt");
  const XModel copy = XModel::deserialize(original.serialize());
  const img::Image probe = img::make_test_image(64, 64, 123);
  EXPECT_EQ(copy.infer(tensor_from_image(probe)),
            original.infer(tensor_from_image(probe)));
}

TEST(XModel, SerializationIsDeterministic) {
  EXPECT_EQ(make_zoo_model("resnet50_pt").serialize(),
            make_zoo_model("resnet50_pt").serialize());
}

TEST(XModel, CrcTamperDetected) {
  auto blob = make_zoo_model("resnet50_pt").serialize();
  blob[blob.size() / 2] ^= 0x01;
  EXPECT_THROW(XModel::deserialize(blob), std::invalid_argument);
}

TEST(XModel, BadMagicRejected) {
  auto blob = make_zoo_model("resnet50_pt").serialize();
  blob[0] = 'Y';
  EXPECT_THROW(XModel::deserialize(blob), std::invalid_argument);
}

TEST(XModel, TrailingBytesRejectedByStrictParse) {
  auto blob = make_zoo_model("resnet50_pt").serialize();
  blob.push_back(0);
  EXPECT_THROW(XModel::deserialize(blob), std::invalid_argument);
}

TEST(XModel, DeserializeAtFindsContainerInsideResidue) {
  // The forensic path: container embedded mid-buffer among junk.
  const XModel m = make_zoo_model("mobilenet_v2_tf");
  const auto blob = m.serialize();
  // back_inserter rather than range-insert: GCC 12's -Warray-bounds
  // misfires on the latter at -O2 and CI builds with -Werror.
  std::vector<std::uint8_t> residue(100, 0xAB);
  std::copy(blob.begin(), blob.end(), std::back_inserter(residue));
  residue.insert(residue.end(), 50, 0xCD);
  std::size_t consumed = 0;
  const XModel parsed = XModel::deserialize_at(residue, 100, &consumed);
  EXPECT_EQ(parsed.name(), "mobilenet_v2_tf");
  EXPECT_EQ(consumed, blob.size());
}

TEST(XModel, DeserializeAtRejectsCorruptedResidue) {
  const auto blob = make_zoo_model("resnet50_pt").serialize();
  std::vector<std::uint8_t> residue = blob;
  residue[residue.size() - 10] ^= 0xFF;  // damage inside CRC coverage
  EXPECT_THROW(XModel::deserialize_at(residue, 0), std::invalid_argument);
}

TEST(XModel, InstallPathMatchesVitisLayout) {
  const XModel m = make_zoo_model("resnet50_pt");
  EXPECT_EQ(m.install_path(),
            "/usr/share/vitis_ai_library/models/resnet50_pt/resnet50_pt.xmodel");
}

TEST(XModel, InferValidatesInputShape) {
  const XModel m = make_zoo_model("resnet50_pt");
  EXPECT_THROW((void)m.infer(Tensor{TensorShape{3, 32, 32}}),
               std::invalid_argument);
}

TEST(XModel, InferReturnsProbabilities) {
  const XModel m = make_zoo_model("resnet50_pt");
  const img::Image in = img::make_test_image(64, 64, 77);
  const auto probs = m.infer(tensor_from_image(in));
  EXPECT_EQ(probs.size(), m.num_classes());
  double sum = 0;
  for (const float p : probs) {
    EXPECT_GE(p, 0.0f);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(XModel, ConstructorValidatesLayerChain) {
  std::vector<std::unique_ptr<Layer>> layers;
  layers.push_back(std::make_unique<Dense>(10, 2, false, 0,
                                           std::vector<std::int8_t>(20, 0),
                                           std::vector<std::int32_t>(2, 0)));
  // Input volume 3*64*64 != 10 -> chain doesn't compose.
  EXPECT_THROW((XModel{"bad", "pt", TensorShape{3, 64, 64}, {}, std::move(layers)}),
               std::invalid_argument);
}

TEST(XModel, ConstructorRejectsEmpty) {
  std::vector<std::unique_ptr<Layer>> none;
  EXPECT_THROW((XModel{"m", "pt", TensorShape{3, 64, 64}, {}, std::move(none)}),
               std::invalid_argument);
  std::vector<std::unique_ptr<Layer>> one;
  one.push_back(std::make_unique<GlobalAvgPool>());
  EXPECT_THROW((XModel{"", "pt", TensorShape{3, 64, 64}, {}, std::move(one)}),
               std::invalid_argument);
}

TEST(XModel, FuzzedResidueNeverAllocatesWildly) {
  // Regression: a corrupted layer count field used to be handed to
  // std::vector's constructor before validation, turning noisy residue
  // into a 16 GiB allocation (std::bad_alloc). Every corruption must now
  // surface as std::invalid_argument from a bounds check.
  const auto blob = make_zoo_model("squeezenet_pt").serialize();
  util::Prng prng{20240522};
  for (int trial = 0; trial < 300; ++trial) {
    auto fuzzed = blob;
    // Corrupt 1-4 random bytes anywhere in the container.
    const int flips = 1 + static_cast<int>(prng.below(4));
    for (int i = 0; i < flips; ++i) {
      fuzzed[prng.below(fuzzed.size())] ^= static_cast<std::uint8_t>(prng());
    }
    try {
      (void)XModel::deserialize_at(fuzzed, 0);
      // Parsing may still succeed when the flips landed outside the CRC's
      // sensitivity (they can't — CRC covers everything — unless the
      // flips cancelled); success with a valid CRC is acceptable.
    } catch (const std::invalid_argument&) {
      // expected rejection path
    }
  }
}

TEST(XModel, HugeLengthFieldsRejectedNotAllocated) {
  // Hand-craft a container prefix whose bias count claims 0xFFFFFFFF.
  const auto blob = make_zoo_model("resnet50_pt").serialize();
  auto bad = blob;
  // The first conv layer's weight count sits after the fixed header; walk
  // to it structurally: find the first kConv2d tag after the shape words.
  // Simpler: slam every aligned u32 in the first 2 KiB to 0xFFFFFFFF one
  // at a time — none may cause an allocation larger than the blob.
  for (std::size_t off = 8; off + 4 < 2048 && off + 4 < bad.size(); off += 4) {
    auto probe = blob;
    probe[off] = 0xFF;
    probe[off + 1] = 0xFF;
    probe[off + 2] = 0xFF;
    probe[off + 3] = 0xFF;
    try {
      (void)XModel::deserialize_at(probe, 0);
    } catch (const std::invalid_argument&) {
    }
  }
  SUCCEED();  // reaching here without bad_alloc is the assertion
}

TEST(XModel, MagicIsStable) {
  const auto& m = XModel::magic();
  EXPECT_EQ(m[0], 'X');
  EXPECT_EQ(m[4], '1');
  EXPECT_EQ(m[5], '\0');
}

}  // namespace
}  // namespace msa::vitis
